(* The serving layer, end to end:
   - Sched: typed Overloaded rejection, per-source round-robin
     fairness, exception transparency, drain-on-close;
   - Cache: generation-stamped entries, invalidation by Update.apply;
   - site servers: the per-run reply-memo table stays bounded (LRU cap)
     and Run_done evicts eagerly;
   - the tentpole differential: N queries submitted concurrently — over
     real sockets (clean) and over in-process clusters under qcheck'd
     fault plans — return bit-identical answers, visit counts and audit
     verdicts to the same queries run sequentially, cache on or off;
   - the mixed-workload differential: XPath and graph-reachability runs
     interleaved through the same scheduler and socket mux, both
     families bit-identical to sequential and passing their audits. *)

module Fragment = Pax_frag.Fragment
module Update = Pax_frag.Update
module Cluster = Pax_dist.Cluster
module Wire = Pax_wire.Wire
module Sockio = Pax_net.Sockio
module Server = Pax_net.Server
module Client = Pax_net.Client
module Sched = Pax_serve.Sched
module Cache = Pax_serve.Cache
module Feed = Pax_serve.Feed
module Coordinator = Pax_serve.Coordinator
module Pe = Pax_engine.Pe
module Engines = Pax_core.Engines
module Gfrag = Pax_graph.Gfrag
module H = Test_helpers

exception Timed_out

let with_timeout secs f =
  let old =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Timed_out))
  in
  ignore (Unix.alarm secs);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm old)
    f

let qcount n =
  match Sys.getenv_opt "PAX_QCHECK_COUNT" with
  | Some s -> ( try int_of_string s with _ -> n)
  | None -> n

(* ------------------------------------------------------------------ *)
(* Sched                                                              *)
(* ------------------------------------------------------------------ *)

(* A gate the test holds closed while it arranges queue contents. *)
type gate = { g_lock : Mutex.t; g_cond : Condition.t; mutable g_open : bool }

let gate () = { g_lock = Mutex.create (); g_cond = Condition.create (); g_open = false }

let wait_gate g =
  Mutex.lock g.g_lock;
  while not g.g_open do
    Condition.wait g.g_cond g.g_lock
  done;
  Mutex.unlock g.g_lock

let open_gate g =
  Mutex.lock g.g_lock;
  g.g_open <- true;
  Condition.broadcast g.g_cond;
  Mutex.unlock g.g_lock

let spin_until ?(tries = 2000) pred =
  let rec go n =
    if pred () then ()
    else if n = 0 then Alcotest.fail "condition never became true"
    else begin
      Thread.yield ();
      Unix.sleepf 0.001;
      go (n - 1)
    end
  in
  go tries

let submit_exn sched ~source f =
  match Sched.submit sched ~source f with
  | Ok tk -> tk
  | Error r -> Alcotest.failf "unexpected rejection: %a" Sched.pp_rejection r

let counter_value sink name =
  match
    List.find_opt
      (fun (series, _) -> series = name)
      (Pax_obs.Metrics.pairs sink.Pax_obs.Sink.metrics)
  with
  | Some (_, v) -> v
  | None -> 0.

let test_sched_overloaded () =
  with_timeout 60 (fun () ->
      let sched = Sched.create ~max_inflight:1 ~max_queue:2 () in
      let g = gate () in
      let blocker = submit_exn sched ~source:"a" (fun () -> wait_gate g; 0) in
      (* Wait until the single worker has the blocker in flight, so the
         next two submissions sit in the queue. *)
      spin_until (fun () -> Sched.inflight sched = 1);
      let q1 = submit_exn sched ~source:"a" (fun () -> 1) in
      let q2 = submit_exn sched ~source:"a" (fun () -> 2) in
      (* Queue full: typed rejection, immediately — never a hang. *)
      (match Sched.submit sched ~source:"a" (fun () -> 3) with
      | Error (Sched.Overloaded { queued = 2; max_queue = 2; _ }) -> ()
      | Error r -> Alcotest.failf "wrong rejection: %a" Sched.pp_rejection r
      | Ok _ -> Alcotest.fail "over-queue submission must be rejected");
      open_gate g;
      Alcotest.(check int) "blocker" 0 (Result.get_ok (Sched.await blocker));
      Alcotest.(check int) "q1" 1 (Result.get_ok (Sched.await q1));
      Alcotest.(check int) "q2" 2 (Result.get_ok (Sched.await q2));
      Sched.close sched;
      match Sched.submit sched ~source:"a" (fun () -> 4) with
      | Error Sched.Closed -> ()
      | _ -> Alcotest.fail "submit after close must be Closed")

let test_sched_fairness () =
  with_timeout 60 (fun () ->
      let sched = Sched.create ~max_inflight:1 ~max_queue:16 () in
      let g = gate () in
      let order = ref [] in
      let olock = Mutex.create () in
      let job tag () =
        Mutex.lock olock;
        order := tag :: !order;
        Mutex.unlock olock
      in
      let blocker = submit_exn sched ~source:"z" (fun () -> wait_gate g) in
      spin_until (fun () -> Sched.inflight sched = 1);
      (* Source a floods first; b's jobs arrive after.  Round-robin must
         interleave them rather than drain a's FIFO first. *)
      let tks =
        List.map
          (fun (src, tag) -> submit_exn sched ~source:src (job tag))
          [ ("a", "a1"); ("a", "a2"); ("a", "a3");
            ("b", "b1"); ("b", "b2"); ("b", "b3") ]
      in
      open_gate g;
      ignore (Sched.await blocker);
      List.iter (fun tk -> ignore (Sched.await tk)) tks;
      Alcotest.(check (list string))
        "round-robin across sources"
        [ "a1"; "b1"; "a2"; "b2"; "a3"; "b3" ]
        (List.rev !order);
      Sched.close sched)

let test_sched_exception () =
  with_timeout 60 (fun () ->
      let sched = Sched.create ~max_inflight:2 () in
      let tk = submit_exn sched ~source:"a" (fun () -> failwith "boom") in
      (match Sched.await tk with
      | Error (Failure m) when m = "boom" -> ()
      | Error e -> Alcotest.failf "wrong exn: %s" (Printexc.to_string e)
      | Ok () -> Alcotest.fail "job must fail");
      (* The worker survives a raising job. *)
      let tk2 = submit_exn sched ~source:"a" (fun () -> 7) in
      Alcotest.(check int) "next job runs" 7 (Result.get_ok (Sched.await tk2));
      Sched.close sched)

let test_sched_close_drains () =
  with_timeout 60 (fun () ->
      let sched = Sched.create ~max_inflight:2 ~max_queue:64 () in
      let done_count = ref 0 in
      let dlock = Mutex.create () in
      let tks =
        List.init 20 (fun i ->
            submit_exn sched ~source:(Printf.sprintf "s%d" (i mod 3))
              (fun () ->
                Mutex.lock dlock;
                incr done_count;
                Mutex.unlock dlock))
      in
      Sched.close sched;
      Alcotest.(check int) "all admitted jobs ran" 20 !done_count;
      List.iter
        (fun tk ->
          match Sched.await tk with
          | Ok () -> ()
          | Error e -> Alcotest.failf "job failed: %s" (Printexc.to_string e))
        tks)

(* Deadline shedding: the admission estimate is queued cost over the
   worker pool plus the job's own predicted cost; an unmeetable
   deadline is a typed Deadline_infeasible with that estimate. *)
let test_sched_deadline () =
  with_timeout 60 (fun () ->
      let sink = Pax_obs.Sink.create () in
      let sched = Sched.create ~max_inflight:1 ~max_queue:4 ~sink () in
      let g = gate () in
      let blocker = submit_exn sched ~source:"a" (fun () -> wait_gate g; 0) in
      spin_until (fun () -> Sched.inflight sched = 1);
      (* One queued job with a known cost makes the estimate exact. *)
      let q1 =
        match Sched.submit sched ~source:"a" ~cost:10. (fun () -> 1) with
        | Ok tk -> tk
        | Error r -> Alcotest.failf "unexpected: %a" Sched.pp_rejection r
      in
      Alcotest.(check bool) "est_wait sees the pending cost" true
        (Sched.est_wait sched >= 10.);
      let now = Pax_obs.Clock.now () in
      (* 10s of queued cost cannot fit a 100ms deadline. *)
      (match
         Sched.submit sched ~source:"a" ~deadline:(now +. 0.1) (fun () -> 2)
       with
      | Error (Sched.Deadline_infeasible { deadline; est_latency }) ->
          Alcotest.(check bool) "echoes the deadline" true
            (deadline = now +. 0.1);
          Alcotest.(check bool) "estimate covers the queue" true
            (est_latency >= 10.)
      | Error r -> Alcotest.failf "wrong rejection: %a" Sched.pp_rejection r
      | Ok _ -> Alcotest.fail "infeasible deadline must shed");
      (* A generous deadline admits past the same queue. *)
      let q2 =
        match
          Sched.submit sched ~source:"a" ~deadline:(now +. 3600.) (fun () -> 2)
        with
        | Ok tk -> tk
        | Error r -> Alcotest.failf "unexpected: %a" Sched.pp_rejection r
      in
      open_gate g;
      Alcotest.(check int) "blocker" 0 (Result.get_ok (Sched.await blocker));
      Alcotest.(check int) "q1" 1 (Result.get_ok (Sched.await q1));
      Alcotest.(check int) "q2" 2 (Result.get_ok (Sched.await q2));
      Alcotest.(check (float 0.0)) "shed counter (deadline)" 1.
        (counter_value sink "pax_sched_shed_total{reason=\"deadline\"}");
      Sched.close sched)

(* A submission that is both over-queue and past-deadline gets the
   deadline verdict: retrying cannot help, so infeasibility is the
   actionable signal. *)
let test_sched_deadline_precedence () =
  with_timeout 60 (fun () ->
      let sched = Sched.create ~max_inflight:1 ~max_queue:1 () in
      let g = gate () in
      let blocker = submit_exn sched ~source:"a" (fun () -> wait_gate g) in
      spin_until (fun () -> Sched.inflight sched = 1);
      let q1 = submit_exn sched ~source:"a" (fun () -> ()) in
      (match
         Sched.submit sched ~source:"a"
           ~deadline:(Pax_obs.Clock.now () -. 1.)
           (fun () -> ())
       with
      | Error (Sched.Deadline_infeasible _) -> ()
      | Error r -> Alcotest.failf "wrong rejection: %a" Sched.pp_rejection r
      | Ok _ -> Alcotest.fail "past deadline must shed");
      (* The same submission without a deadline is Overloaded — with
         the measured queue-inclusive latency estimate attached. *)
      (match Sched.submit sched ~source:"a" (fun () -> ()) with
      | Error (Sched.Overloaded { queued = 1; max_queue = 1; est_latency }) ->
          Alcotest.(check bool) "estimate is non-negative" true
            (est_latency >= 0.)
      | Error r -> Alcotest.failf "wrong rejection: %a" Sched.pp_rejection r
      | Ok _ -> Alcotest.fail "full queue must reject");
      open_gate g;
      ignore (Sched.await blocker);
      ignore (Sched.await q1);
      Sched.close sched)

(* QoS shares: strict priority between classes, weighted rotation
   within one.  gold (weight 2, priority 1) drains before the default
   class; within priority 0, a (weight 2) takes two dispatches per
   rotation turn against b (weight 1). *)
let test_sched_qos () =
  with_timeout 60 (fun () ->
      let sched = Sched.create ~max_inflight:1 ~max_queue:16 () in
      Sched.configure_source sched ~source:"gold" ~weight:2 ~priority:1 ();
      Sched.configure_source sched ~source:"a" ~weight:2 ();
      let g = gate () in
      let order = ref [] in
      let olock = Mutex.create () in
      let job tag () =
        Mutex.lock olock;
        order := tag :: !order;
        Mutex.unlock olock
      in
      let blocker = submit_exn sched ~source:"z" (fun () -> wait_gate g) in
      spin_until (fun () -> Sched.inflight sched = 1);
      let tks =
        List.map
          (fun (src, tag) -> submit_exn sched ~source:src (job tag))
          [ ("a", "a1"); ("a", "a2"); ("a", "a3");
            ("b", "b1"); ("b", "b2");
            ("gold", "g1"); ("gold", "g2"); ("gold", "g3") ]
      in
      open_gate g;
      ignore (Sched.await blocker);
      List.iter (fun tk -> ignore (Sched.await tk)) tks;
      Alcotest.(check (list string))
        "priority first, then weighted rotation"
        [ "g1"; "g2"; "g3"; "a1"; "a2"; "b1"; "a3"; "b2" ]
        (List.rev !order);
      Sched.close sched)

(* ------------------------------------------------------------------ *)
(* Cache                                                              *)
(* ------------------------------------------------------------------ *)

let dummy_result fid =
  {
    Wire.fr_fid = fid;
    fr_vec = Some [| Pax_bool.Formula.true_ |];
    fr_ctxs = [];
    fr_answers = [];
    fr_cands = 0;
    fr_ops = 5;
  }

let test_cache_generation () =
  let c = H.Data.clientele () in
  let ft = H.Data.clientele_ftree c in
  let cache = Cache.create ft in
  Alcotest.(check (option reject)) "empty miss" None
    (Cache.lookup cache ~qkey:"q" ~fid:1);
  Cache.store cache ~qkey:"q" ~fid:1 (dummy_result 1);
  (match Cache.lookup cache ~qkey:"q" ~fid:1 with
  | Some fr -> Alcotest.(check int) "hit" 1 fr.Wire.fr_fid
  | None -> Alcotest.fail "fresh entry must hit");
  Alcotest.(check (option reject)) "other qkey misses" None
    (Cache.lookup cache ~qkey:"q2" ~fid:1);
  (* Bumping the generation (what Update.apply does) invalidates
     exactly that fragment's entries. *)
  Cache.store cache ~qkey:"q" ~fid:2 (dummy_result 2);
  Fragment.bump_generation ft 1;
  Alcotest.(check (option reject)) "stale entry swept" None
    (Cache.lookup cache ~qkey:"q" ~fid:1);
  (match Cache.lookup cache ~qkey:"q" ~fid:2 with
  | Some _ -> ()
  | None -> Alcotest.fail "untouched fragment must still hit");
  Alcotest.(check int) "sweep removed the stale entry" 1 (Cache.size cache);
  Cache.clear cache;
  Alcotest.(check int) "clear" 0 (Cache.size cache)

let test_cache_update_invalidates () =
  let c = H.Data.clientele () in
  let ft = H.Data.clientele_ftree c in
  let cache = Cache.create ft in
  (* Locate the fragment holding E*trade's name, warm an entry for it
     and one for another fragment. *)
  let fid, _ =
    match Update.locate ft c.H.Data.etrade_name with
    | Some x -> x
    | None -> Alcotest.fail "node not found"
  in
  let other = if fid = 0 then 1 else 0 in
  Cache.store cache ~qkey:"k" ~fid (dummy_result fid);
  Cache.store cache ~qkey:"k" ~fid:other (dummy_result other);
  (match Update.apply ft (Update.Set_text (c.H.Data.etrade_name, "Etrade")) with
  | Ok touched -> Alcotest.(check int) "update touched the fragment" fid touched
  | Error e -> Alcotest.fail (Update.error_to_string e));
  Alcotest.(check (option reject)) "edited fragment invalidated" None
    (Cache.lookup cache ~qkey:"k" ~fid);
  match Cache.lookup cache ~qkey:"k" ~fid:other with
  | Some _ -> ()
  | None -> Alcotest.fail "unedited fragment must survive the update"

(* ------------------------------------------------------------------ *)
(* Site-server memo table stays bounded                               *)
(* ------------------------------------------------------------------ *)

let test_server_memo_bound () =
  with_timeout 60 (fun () ->
      let c = H.Data.clientele () in
      let ft = H.Data.clientele_ftree c in
      let frags =
        List.init (Fragment.n_fragments ft) (fun fid ->
            (fid, (Fragment.fragment ft fid).Fragment.root))
      in
      let srv = Server.create ~max_runs:4 ~frags () in
      let dir = Filename.get_temp_dir_name () in
      let path =
        Filename.concat dir (Printf.sprintf "pax_serve_memo_%d.sock" (Unix.getpid ()))
      in
      let addr = Sockio.Unix_path path in
      let lfd = Sockio.listen addr in
      let server_thread = Thread.create (fun () -> Server.serve srv lfd) () in
      let fd = Sockio.connect addr in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close fd with _ -> ());
          (try Unix.close lfd with _ -> ());
          (try Sys.remove path with _ -> ()))
        (fun () ->
          let rpc msg =
            Sockio.write_frame fd (Wire.encode_payload msg);
            match Sockio.read_frame ~timeout:10. fd with
            | Some payload -> Result.get_ok (Wire.decode_payload payload)
            | None -> Alcotest.fail "server closed the connection"
          in
          let visit run =
            let call =
              Wire.Pax2_stage1
                {
                  query = "//client/name";
                  frags =
                    [ { Wire.fe_fid = 1; fe_is_root = false; fe_init = None } ];
                }
            in
            match
              rpc
                (Wire.Visit_request
                   {
                     run;
                     round = 0;
                     site = 0;
                     epoch = 0;
                     label = "s1";
                     parent = None;
                     call;
                   })
            with
            | Wire.Visit_reply { reply = Ok _; _ } -> ()
            | _ -> Alcotest.fail "unexpected reply to a visit request"
          in
          (* 10 distinct runs through a cap of 4: the state table must
             never exceed the cap (each reply is processed before the
             next request is sent, so reading the size is race-free). *)
          for run = 1 to 10 do
            visit run;
            if Server.n_run_states srv > 4 then
              Alcotest.failf "run table grew to %d (cap 4)"
                (Server.n_run_states srv)
          done;
          Alcotest.(check int) "table at the LRU cap" 4
            (Server.n_run_states srv);
          (* Run_done evicts eagerly; Ping/Pong fences the check. *)
          Sockio.write_frame fd (Wire.encode_payload (Wire.Run_done { run = 10 }));
          (match rpc Wire.Ping with
          | Wire.Pong -> ()
          | _ -> Alcotest.fail "expected Pong");
          Alcotest.(check int) "Run_done evicted one run" 3
            (Server.n_run_states srv);
          (* A replayed request for an evicted run recomputes (fresh
             state), it does not fail. *)
          visit 2;
          Alcotest.(check int) "evicted run recomputed" 4
            (Server.n_run_states srv);
          Sockio.write_frame fd (Wire.encode_payload Wire.Shutdown);
          Thread.join server_thread))

(* ------------------------------------------------------------------ *)
(* The differential: concurrent = sequential                          *)
(* ------------------------------------------------------------------ *)

let queries16 =
  [
    "//person[profile/education]";
    "//person/profile/age";
    "//regions/*/item/name";
    "//person[profile/interest/@category]/name";
    "/site/open_auctions/open_auction[bidder]";
    "//item[location/text() = \"United States\"]";
    "//person/name";
    "//item/name";
    "//open_auction/bidder";
    "//person[profile]";
    "//person/emailaddress";
    "//closed_auctions/closed_auction";
    "//open_auction[initial]";
    "//regions/*/item";
    "//item/location";
    "//person[profile/age]/name";
  ]

let make_setup () =
  let doc = Pax_xmark.Xmark.doc ~seed:11 ~total_nodes:1600 ~n_sites:4 in
  Fragment.fragmentize doc ~cuts:(Fragment.cuts_by_tag doc ~tag:"site")

(* What "bit-identical" means here: answers, per-site visit counts and
   the guarantee auditor's verdict — in engine-neutral Pe terms, so the
   same check covers XPath and reachability runs. *)
type obs = {
  o_answers : int list;
  o_visits : int array;
  o_audit_pass : bool;
}

let observe (o : Pe.outcome) =
  {
    o_answers = o.Pe.answer_keys;
    o_visits = o.Pe.report.Cluster.visits;
    o_audit_pass = o.Pe.audit.Pax_obs.Audit.pass;
  }

let check_obs name a b =
  Alcotest.(check (list int)) (name ^ ": answers") a.o_answers b.o_answers;
  Alcotest.(check (array int)) (name ^ ": visits") a.o_visits b.o_visits;
  Alcotest.(check bool) (name ^ ": audit verdict") a.o_audit_pass b.o_audit_pass;
  Alcotest.(check bool) (name ^ ": auditor passes") true b.o_audit_pass

(* [gsite_frags site] adds graph fragments for the reachability engine
   to each site server (the mixed-workload suite); default none. *)
let with_servers ?(gsite_frags = fun _ -> []) ?(flake = 0) ft ~n_sites f =
  let cl = Pax_dist.Placement.cluster_round_robin ft ~n_sites in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pax_serve_test_%d_%d" (Unix.getpid ())
         (Random.int 100000))
  in
  Sys.mkdir dir 0o755;
  let addrs =
    Array.init n_sites (fun site ->
        Sockio.Unix_path (Filename.concat dir (Printf.sprintf "s%d.sock" site)))
  in
  let site_frags site =
    List.map
      (fun fid -> (fid, (Fragment.fragment ft fid).Fragment.root))
      (Cluster.fragments_on cl site)
  in
  let pids =
    Array.to_list
      (Array.mapi
         (fun site addr ->
           Server.spawn ~flake ~addr ~frags:(site_frags site)
             ~gfrags:(gsite_frags site) ())
         addrs)
  in
  let mux = Client.create ~timeout:20. ~addrs () in
  Fun.protect
    ~finally:(fun () ->
      Client.shutdown_sites mux;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        pids;
      Array.iter
        (fun a ->
          match a with
          | Sockio.Unix_path p -> ( try Sys.remove p with _ -> ())
          | Sockio.Tcp _ -> ())
        addrs;
      try Sys.rmdir dir with _ -> ())
    (fun () -> f ~mux ~proto:cl ~addrs ())

(* The standard XPath mounts over a placement prototype. *)
let xpath_mounts ft proto =
  let n_sites = Cluster.n_sites proto in
  let assign fid = Cluster.site_of proto fid in
  [
    Coordinator.mount (Engines.pax2 ft ~n_sites ~assign);
    Coordinator.mount (Engines.pax3 ft ~n_sites ~assign);
  ]

(* Queries as (engine, text) pairs: the engine-blind coordinator routes
   by mount name.  Sequential baseline awaits each run before
   submitting the next. *)
let run_sequential coord eqs =
  List.map
    (fun (engine, q) ->
      match Coordinator.run ~engine coord q with
      | Ok o -> o
      | Error e ->
          Alcotest.failf "sequential %s rejected: %s" q
            (Coordinator.error_message e))
    eqs

(* Concurrent: submit everything, then collect.  Sources rotate so the
   fair scheduler actually interleaves. *)
let run_concurrent coord eqs =
  let tickets =
    List.mapi
      (fun i (engine, q) ->
        let source = Printf.sprintf "client-%d" (i mod 4) in
        match Coordinator.submit ~engine ~source coord q with
        | Ok tk -> (q, tk)
        | Error e ->
            Alcotest.failf "concurrent %s rejected: %s" q
              (Coordinator.error_message e))
      eqs
  in
  List.map
    (fun (q, tk) ->
      match Coordinator.await tk with
      | Ok o -> o
      | Error e -> Alcotest.failf "concurrent %s raised: %s" q (Printexc.to_string e))
    tickets

let with_engine engine qs = List.map (fun q -> (engine, q)) qs

let test_sockets_differential () =
  with_timeout 300 (fun () ->
      let ft = make_setup () in
      with_servers ft ~n_sites:3 (fun ~mux ~proto ~addrs:_ () ->
          let mk_coord ~max_inflight () =
            Coordinator.create ~max_inflight (Coordinator.Sockets mux)
              (xpath_mounts ft proto)
          in
          let seq = mk_coord ~max_inflight:1 () in
          let conc = mk_coord ~max_inflight:8 () in
          List.iter
            (fun ename ->
              let eqs = with_engine ename queries16 in
              let rs = run_sequential seq eqs in
              let rc = run_concurrent conc eqs in
              List.iter2
                (fun (q, a) b ->
                  check_obs
                    (Printf.sprintf "%s %s" ename q)
                    (observe a) (observe b))
                (List.combine queries16 rs)
                rc)
            [ "pax2"; "pax3" ];
          Coordinator.close seq;
          Coordinator.close conc))

let test_sockets_differential_cached () =
  with_timeout 300 (fun () ->
      let ft = make_setup () in
      with_servers ft ~n_sites:3 (fun ~mux ~proto ~addrs:_ () ->
          let sink_s = Pax_obs.Sink.create () in
          let sink_c = Pax_obs.Sink.create () in
          let mk_coord ~cache ~max_inflight () =
            Coordinator.create ~max_inflight ~cache (Coordinator.Sockets mux)
              (xpath_mounts ft proto)
          in
          let seq = mk_coord ~cache:(Cache.create ~sink:sink_s ft) ~max_inflight:1 () in
          let conc = mk_coord ~cache:(Cache.create ~sink:sink_c ft) ~max_inflight:8 () in
          let eqs = with_engine "pax2" queries16 in
          (* Pass 1 warms each coordinator's own cache (16 distinct
             queries: entries never cross queries, so concurrent
             warm-up is race-free); pass 2 runs hot. *)
          let s1 = run_sequential seq eqs in
          let s2 = run_sequential seq eqs in
          let c1 = run_concurrent conc eqs in
          let c2 = run_concurrent conc eqs in
          List.iter2
            (fun (q, (a, a')) (b, b') ->
              check_obs ("cached cold " ^ q) (observe a) (observe b);
              check_obs ("cached hot " ^ q) (observe a') (observe b');
              (* The cache changes visits, never answers. *)
              Alcotest.(check (list int))
                ("hot answers = cold answers " ^ q)
                a.Pe.answer_keys a'.Pe.answer_keys)
            (List.combine queries16 (List.combine s1 s2))
            (List.combine c1 c2);
          List.iter
            (fun (mode, sink) ->
              Alcotest.(check bool)
                (mode ^ ": cache was exercised")
                true
                (counter_value sink "pax_cache_hits_total" > 0.))
            [ ("sequential", sink_s); ("concurrent", sink_c) ];
          Coordinator.close seq;
          Coordinator.close conc))

(* Round-robin placement over [n_sites], as the proto-cluster helpers
   build it, but usable for in-process mounts without a prototype. *)
let rr_mounts ft ~n_sites ?tune () =
  let proto = Pax_dist.Placement.cluster_round_robin ft ~n_sites in
  let assign fid = Cluster.site_of proto fid in
  [
    Coordinator.mount ?tune (Engines.pax2 ft ~n_sites ~assign);
    Coordinator.mount ?tune (Engines.pax3 ft ~n_sites ~assign);
  ]

(* Coordinator-level admission control: typed rejection under a full
   queue, all admitted runs complete. *)
let test_coordinator_overloaded () =
  with_timeout 60 (fun () ->
      let ft = make_setup () in
      let g = gate () in
      (* Stall inside per-run cluster tuning so the worker stays busy
         while the test floods the queue. *)
      let tune _ = wait_gate g in
      let coord =
        Coordinator.create ~max_inflight:1 ~max_queue:1
          Coordinator.In_process
          (rr_mounts ft ~n_sites:3 ~tune ())
      in
      let q = "//person/name" in
      let t1 = Result.get_ok (Coordinator.submit coord q) in
      spin_until (fun () -> Coordinator.inflight coord = 1);
      let t2 = Result.get_ok (Coordinator.submit coord q) in
      (match Coordinator.submit coord q with
      | Error
          (Coordinator.Rejected
             (Sched.Overloaded { queued = 1; max_queue = 1; _ })) -> ()
      | Error e -> Alcotest.failf "wrong rejection: %s" (Coordinator.error_message e)
      | Ok _ -> Alcotest.fail "full queue must reject");
      (* Deadline shedding surfaces through the coordinator's typed
         error — and outranks the full queue (retrying cannot help). *)
      (match
         Coordinator.submit ~deadline:(Pax_obs.Clock.now () -. 1.) coord q
       with
      | Error (Coordinator.Rejected (Sched.Deadline_infeasible _)) -> ()
      | Error e ->
          Alcotest.failf "past deadline: wrong error: %s"
            (Coordinator.error_message e)
      | Ok _ -> Alcotest.fail "past deadline must shed");
      (* Malformed queries are rejected before scheduling — even with a
         stalled worker and a full queue this answers immediately, and
         with a typed error, not an Overloaded. *)
      (match Coordinator.submit coord "//person[" with
      | Error (Coordinator.Bad_query _) -> ()
      | Error e ->
          Alcotest.failf "malformed query: wrong error: %s"
            (Coordinator.error_message e)
      | Ok _ -> Alcotest.fail "malformed query must be rejected");
      (match Coordinator.submit ~engine:"no-such-engine" coord q with
      | Error (Coordinator.Unknown_engine _) -> ()
      | Error e ->
          Alcotest.failf "unknown engine: wrong error: %s"
            (Coordinator.error_message e)
      | Ok _ -> Alcotest.fail "unknown engine must be rejected");
      open_gate g;
      List.iter
        (fun tk ->
          match Coordinator.await tk with
          | Ok (o : Pe.outcome) ->
              Alcotest.(check bool) "admitted run answered" true
                (o.Pe.answer_keys <> [])
          | Error e -> Alcotest.failf "admitted run failed: %s" (Printexc.to_string e))
        [ t1; t2 ];
      Coordinator.close coord)

(* ------------------------------------------------------------------ *)
(* Cache coherence across coordinators (docs/SERVING.md)              *)
(* ------------------------------------------------------------------ *)

(* Two coordinators share the same site servers, each with its own
   replica tree, mux and warm stage cache.  An update goes through
   coordinator A: applied to A's replica, the fragment's new image
   pushed to its site, the new generation published.  The servers fan
   the event to coordinator B's mux, B's feed merges it, and B's next
   queries must be bit-identical to a cold-cache coordinator whose
   replica saw the same update — B must never serve pre-update answers
   from its warm cache.  [flake] runs the same flow over faulted
   schedules (every flake-th visit swallowed, client retries). *)
let test_gen_coherence ~flake () =
  with_timeout 120 (fun () ->
      let cA = H.Data.clientele () in
      let ftA = H.Data.clientele_ftree cA in
      let ftB = H.Data.clientele_ftree (H.Data.clientele ()) in
      let cC = H.Data.clientele () in
      let ftC = H.Data.clientele_ftree cC in
      let n_sites = 3 in
      with_servers ~flake ftA ~n_sites (fun ~mux:muxA ~proto ~addrs () ->
          let mounts ft =
            let assign fid = Cluster.site_of proto fid in
            [ Coordinator.mount (Engines.pax2 ft ~n_sites ~assign) ]
          in
          let muxB = Client.create ~timeout:20. ~addrs () in
          let muxC = Client.create ~timeout:20. ~addrs () in
          let feedA = Feed.attach ~mux:muxA ftA in
          let sinkB = Pax_obs.Sink.create () in
          let _feedB = Feed.attach ~sink:sinkB ~mux:muxB ftB in
          let cache_sink = Pax_obs.Sink.create () in
          let coordB =
            Coordinator.create ~max_inflight:2
              ~cache:(Cache.create ~sink:cache_sink ftB)
              (Coordinator.Sockets muxB) (mounts ftB)
          in
          let qa = "//broker[name/text() = \"E*trade\"]" in
          let qb = "//client/name" in
          let run coord who q =
            match Coordinator.run coord q with
            | Ok o -> o
            | Error e ->
                Alcotest.failf "%s rejected %s: %s" who q
                  (Coordinator.error_message e)
          in
          let runB = run coordB "B" in
          (* Warm B's cache: each query twice, hot = cold. *)
          let a_pre = runB qa in
          ignore (runB qb);
          let a_pre2 = runB qa in
          let b_pre = runB qb in
          Alcotest.(check (list int)) "warm hit is identical"
            a_pre.Pe.answer_keys a_pre2.Pe.answer_keys;
          Alcotest.(check int) "E*trade found pre-update" 1
            (List.length a_pre.Pe.answer_keys);
          (* The update goes through A. *)
          let fid =
            match
              Update.apply ftA
                (Update.Set_text (cA.H.Data.etrade_name, "Etrade"))
            with
            | Ok fid -> fid
            | Error e -> Alcotest.fail (Update.error_to_string e)
          in
          (match
             Feed.push_fragment feedA
               ~site:(Cluster.site_of proto fid)
               ~fid ~epoch:0
           with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "push_fragment: %s" e);
          Feed.publish feedA ~fids:[ fid ];
          (* B's replica hears about it through the servers' relay. *)
          spin_until (fun () ->
              Fragment.generation ftB fid = Fragment.generation ftA fid);
          Alcotest.(check bool) "B counted the event" true
            (counter_value sinkB "pax_feed_events_total" > 0.);
          Alcotest.(check bool) "B counted the invalidation" true
            (counter_value sinkB "pax_feed_invalidations_total" > 0.);
          (* B re-runs with a warm-but-invalidated cache; the reference
             is a cold-cache coordinator whose replica saw the same
             update.  (Visits may differ — B still hits for untouched
             fragments — so the check is answers + audit, not visits.) *)
          let a_post = runB qa in
          let b_post = runB qb in
          (match
             Update.apply ftC
               (Update.Set_text (cC.H.Data.etrade_name, "Etrade"))
           with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Update.error_to_string e));
          let coordC =
            Coordinator.create ~max_inflight:1 (Coordinator.Sockets muxC)
              (mounts ftC)
          in
          let runC = run coordC "C" in
          let a_ref = runC qa in
          let b_ref = runC qb in
          Alcotest.(check (list int)) "post-update B = cold reference (qa)"
            a_ref.Pe.answer_keys a_post.Pe.answer_keys;
          Alcotest.(check (list int)) "post-update B = cold reference (qb)"
            b_ref.Pe.answer_keys b_post.Pe.answer_keys;
          Alcotest.(check int) "update removed the E*trade match" 0
            (List.length a_post.Pe.answer_keys);
          Alcotest.(check (list int)) "unaffected query unchanged"
            b_pre.Pe.answer_keys b_post.Pe.answer_keys;
          Alcotest.(check bool) "B's audit still passes" true
            a_post.Pe.audit.Pax_obs.Audit.pass;
          Alcotest.(check bool) "stale entries were swept" true
            (counter_value cache_sink "pax_cache_invalidated_total" > 0.);
          Coordinator.close coordB;
          Coordinator.close coordC))

(* ------------------------------------------------------------------ *)
(* qcheck: concurrent = sequential under fault plans (in-process)     *)
(* ------------------------------------------------------------------ *)

(* Per-run outcome under faults: success (with its observables) or the
   typed unreachability error.  Anything else fails the property. *)
let faulty_outcome tk =
  match Coordinator.await tk with
  | Ok o ->
      let o = observe o in
      `Ok (o.o_answers, Array.to_list o.o_visits, o.o_audit_pass)
  | Error (Cluster.Site_unreachable { site; stage; attempts }) ->
      `Unreachable (site, stage, attempts)
  | Error e -> raise e

let faulted_differential seed =
  let ft = make_setup () in
  let tune cl =
    Cluster.set_fault cl
      (Pax_dist.Fault.seeded ~drop:0.12 ~dup:0.05 ~lose:0.05 ~crash:0.01
         ~seed ());
    Cluster.set_retry cl
      { Pax_dist.Retry.max_attempts = 4; base_delay = 0.; multiplier = 1.;
        max_delay = 0. }
  in
  let outcomes coord qs =
    (* Submit everything up front, then collect. *)
    let tks =
      List.map
        (fun q ->
          match Coordinator.submit coord q with
          | Ok tk -> tk
          | Error e ->
              QCheck.Test.fail_reportf "rejected: %s"
                (Coordinator.error_message e))
        qs
    in
    List.map faulty_outcome tks
  in
  let seq =
    Coordinator.create ~max_inflight:1 Coordinator.In_process
      (rr_mounts ft ~n_sites:3 ~tune ())
  in
  let conc =
    Coordinator.create ~max_inflight:8 Coordinator.In_process
      (rr_mounts ft ~n_sites:3 ~tune ())
  in
  let os = outcomes seq queries16 in
  let oc = outcomes conc queries16 in
  Coordinator.close seq;
  Coordinator.close conc;
  List.for_all2
    (fun a b ->
      a = b
      || QCheck.Test.fail_reportf
           "seed %d: concurrent and sequential outcomes diverge" seed)
    os oc

let qcheck_faulted =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"concurrent = sequential under fault plans"
       ~count:(qcount 5)
       QCheck.(int_bound 1_000_000)
       (fun seed -> with_timeout 120 (fun () -> faulted_differential seed)))

(* ------------------------------------------------------------------ *)
(* Mixed workload: XPath and reachability through one scheduler/mux   *)
(* ------------------------------------------------------------------ *)

(* A deterministic 48-node graph in 4 fragments. *)
let mixed_graph () =
  let n = 48 in
  let st = Random.State.make [| 0x5eed; 6 |] in
  let edges =
    List.init 140 (fun _ -> (Random.State.int st n, Random.State.int st n))
  in
  let owner = Array.init n (fun v -> v mod 4) in
  (n, edges, Gfrag.partition ~n ~edges ~owner)

let test_mixed_workload () =
  with_timeout 300 (fun () ->
      let ft = make_setup () in
      let n, edges, g = mixed_graph () in
      let n_sites = 3 in
      let gassign fid = fid mod n_sites in
      let gsite_frags site =
        List.filter_map
          (fun fid ->
            if gassign fid = site then Some (fid, Gfrag.fragment g fid)
            else None)
          (List.init (Gfrag.n_fragments g) Fun.id)
      in
      (* The same servers hold tree AND graph fragments; the same mux
         and scheduler carry both query families. *)
      with_servers ~gsite_frags ft ~n_sites (fun ~mux ~proto ~addrs:_ () ->
          let mounts =
            xpath_mounts ft proto
            @ [
                Coordinator.mount
                  (Pax_graph.Reach.engine g ~n_sites ~assign:gassign);
              ]
          in
          let mk ~max_inflight =
            Coordinator.create ~max_inflight (Coordinator.Sockets mux) mounts
          in
          let seq = mk ~max_inflight:1 in
          let conc = mk ~max_inflight:8 in
          (* 16 interleaved runs: XPath and reachability alternate so
             both families share workers, mux and scheduler slots. *)
          let reach_qs =
            List.map
              (fun (s, d) -> Gfrag.query_string ~src:s ~dst:d)
              [ (0, 47); (1, 2); (5, 5); (7, 30);
                (12, 3); (46, 0); (9, 44); (23, 23) ]
          in
          let xpath_qs = List.filteri (fun i _ -> i < 8) queries16 in
          let eqs =
            List.concat
              (List.map2
                 (fun x r -> [ ("pax2", x); ("reach", r) ])
                 xpath_qs reach_qs)
          in
          let rs = run_sequential seq eqs in
          let rc = run_concurrent conc eqs in
          List.iter2
            (fun (ename, q) (a, b) ->
              check_obs
                (Printf.sprintf "mixed %s %s" ename q)
                (observe a) (observe b);
              (* Reachability answers against the centralized BFS. *)
              if ename = "reach" then
                match Gfrag.parse_query q with
                | Some (src, dst) ->
                    let expect = Pax_graph.Bfs.reach ~n ~edges ~src ~dst in
                    Alcotest.(check (list int))
                      (Printf.sprintf "mixed %s = BFS" q)
                      (if expect then [ 1 ] else [])
                      a.Pe.answer_keys
                | None -> Alcotest.fail "unparseable reach query")
            eqs
            (List.combine rs rc);
          Coordinator.close seq;
          Coordinator.close conc))

let () =
  Random.self_init ();
  Alcotest.run "serve"
    [
      ( "sched",
        [
          Alcotest.test_case "overloaded is typed" `Quick test_sched_overloaded;
          Alcotest.test_case "round-robin fairness" `Quick test_sched_fairness;
          Alcotest.test_case "exceptions surface" `Quick test_sched_exception;
          Alcotest.test_case "close drains" `Quick test_sched_close_drains;
          Alcotest.test_case "deadline shedding is typed" `Quick
            test_sched_deadline;
          Alcotest.test_case "deadline outranks overload" `Quick
            test_sched_deadline_precedence;
          Alcotest.test_case "QoS weights and priorities" `Quick
            test_sched_qos;
        ] );
      ( "cache",
        [
          Alcotest.test_case "generation keys" `Quick test_cache_generation;
          Alcotest.test_case "Update.apply invalidates" `Quick
            test_cache_update_invalidates;
        ] );
      ( "server",
        [
          Alcotest.test_case "run memo table is bounded" `Quick
            test_server_memo_bound;
        ] );
      ( "differential",
        [
          Alcotest.test_case "16 concurrent queries over sockets" `Quick
            test_sockets_differential;
          Alcotest.test_case "cache on: concurrent = sequential" `Quick
            test_sockets_differential_cached;
          Alcotest.test_case "coordinator overload is typed" `Quick
            test_coordinator_overloaded;
          qcheck_faulted;
          Alcotest.test_case "mixed XPath + reachability workload" `Quick
            test_mixed_workload;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "two coordinators, one update (clean)" `Quick
            (test_gen_coherence ~flake:0);
          Alcotest.test_case "two coordinators, one update (flaky)" `Quick
            (test_gen_coherence ~flake:3);
        ] );
    ]

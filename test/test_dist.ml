(* The cluster simulator's accounting: placement, visits, rounds,
   parallel vs total aggregation, message classification. *)

module Tree = Pax_xml.Tree
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Measure = Pax_dist.Measure
module H = Test_helpers

let ft =
  let c = H.Data.clientele () in
  H.Data.clientele_ftree c

let test_placement () =
  let cl = Cluster.create ~ftree:ft ~n_sites:2 ~assign:(fun fid -> fid mod 2) () in
  Alcotest.(check int) "two sites" 2 (Cluster.n_sites cl);
  Alcotest.(check int) "F3 on site 1" 1 (Cluster.site_of cl 3);
  Alcotest.(check (list int)) "site 0 fragments" [ 0; 2; 4 ]
    (Cluster.fragments_on cl 0);
  Alcotest.(check (list int)) "sites holding {1,3}" [ 1 ]
    (Cluster.sites_holding cl [ 1; 3 ]);
  Alcotest.(check (list int)) "sites holding all" [ 0; 1 ]
    (Cluster.sites_holding cl [ 0; 1; 2; 3; 4 ])

let test_bad_placement_rejected () =
  match Cluster.create ~ftree:ft ~n_sites:2 ~assign:(fun _ -> 7) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range site must be rejected"

let test_visits_and_rounds () =
  let cl = Cluster.one_site_per_fragment ft in
  ignore (Cluster.run_round cl ~label:"r1" ~sites:[ 0; 1; 2 ] (fun s -> s));
  ignore (Cluster.run_round cl ~label:"r2" ~sites:[ 1 ] (fun s -> s));
  let r = Cluster.report cl in
  Alcotest.(check int) "site 1 visited twice" 2 r.Cluster.visits.(1);
  Alcotest.(check int) "site 3 never" 0 r.Cluster.visits.(3);
  Alcotest.(check int) "max visits" 2 r.Cluster.max_visits;
  Alcotest.(check (list string)) "round labels" [ "r1"; "r2" ] r.Cluster.rounds

let test_ops_aggregation () =
  let cl = Cluster.one_site_per_fragment ft in
  ignore
    (Cluster.run_round cl ~label:"work" ~sites:[ 0; 1 ] (fun s ->
         Cluster.add_ops cl ~site:s (if s = 0 then 10 else 25)));
  ignore
    (Cluster.run_round cl ~label:"more" ~sites:[ 0 ] (fun s ->
         Cluster.add_ops cl ~site:s 5));
  Cluster.coord cl ~label:"c" (fun () -> Cluster.add_ops cl ~site:(-1) 3);
  let r = Cluster.report cl in
  (* parallel = max(10,25) + max(5) + coord 3; total = 10+25+5+3 *)
  Alcotest.(check int) "parallel ops" 33 r.Cluster.parallel_ops;
  Alcotest.(check int) "total ops" 43 r.Cluster.total_ops

let test_message_classification () =
  let cl = Cluster.one_site_per_fragment ft in
  Cluster.send cl ~src:Cluster.Coordinator ~dst:(Cluster.Site 0)
    ~kind:Cluster.Query ~bytes:10 ~label:"q";
  Cluster.send cl ~src:(Cluster.Site 0) ~dst:Cluster.Coordinator
    ~kind:Cluster.Vectors ~bytes:20 ~label:"v";
  Cluster.send cl ~src:Cluster.Coordinator ~dst:(Cluster.Site 0)
    ~kind:Cluster.Resolution ~bytes:30 ~label:"r";
  Cluster.send cl ~src:(Cluster.Site 0) ~dst:Cluster.Coordinator
    ~kind:Cluster.Answers ~bytes:40 ~label:"a";
  Cluster.send cl ~src:(Cluster.Site 0) ~dst:Cluster.Coordinator
    ~kind:Cluster.Tree_data ~bytes:50 ~label:"t";
  let r = Cluster.report cl in
  Alcotest.(check int) "control" 60 r.Cluster.control_bytes;
  Alcotest.(check int) "answers" 40 r.Cluster.answer_bytes;
  Alcotest.(check int) "tree" 50 r.Cluster.tree_bytes;
  Alcotest.(check int) "count" 5 r.Cluster.n_messages;
  Alcotest.(check bool) "net time positive" true (r.Cluster.net_seconds > 0.)

let test_reset () =
  let cl = Cluster.one_site_per_fragment ft in
  ignore (Cluster.run_round cl ~label:"r" ~sites:[ 0 ] (fun _ -> ()));
  Cluster.send cl ~src:Cluster.Coordinator ~dst:(Cluster.Site 0)
    ~kind:Cluster.Query ~bytes:10 ~label:"q";
  Cluster.reset cl;
  let r = Cluster.report cl in
  Alcotest.(check int) "no visits" 0 r.Cluster.max_visits;
  Alcotest.(check int) "no messages" 0 r.Cluster.n_messages;
  Alcotest.(check (list string)) "no rounds" [] r.Cluster.rounds

let test_measures () =
  let q = Pax_xpath.Query.of_string "a/b[c]/d" in
  Alcotest.(check bool) "query bytes grow with |Q|" true
    (Measure.query q < Measure.query (Pax_xpath.Query.of_string "a/b[c and d/e]/f//g"));
  let open Pax_bool in
  Alcotest.(check bool) "formula vector bytes" true
    (Measure.formula_array [| Formula.true_; Formula.var (Var.Qual (1, 2)) |] > 0);
  Alcotest.(check int) "bool array bytes: header + varint + 2 bytes" 7
    (Measure.bool_array (Array.make 16 true));
  let b = Tree.builder () in
  Alcotest.(check bool) "answers bytes" true
    (Measure.answers [ Tree.leaf b "x" "hello" ] > 8)

let () =
  Alcotest.run "dist"
    [
      ( "cluster",
        [
          Alcotest.test_case "placement" `Quick test_placement;
          Alcotest.test_case "bad placement" `Quick test_bad_placement_rejected;
          Alcotest.test_case "visits and rounds" `Quick test_visits_and_rounds;
          Alcotest.test_case "ops aggregation" `Quick test_ops_aggregation;
          Alcotest.test_case "message kinds" `Quick test_message_classification;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ("measure", [ Alcotest.test_case "byte estimates" `Quick test_measures ]);
    ]

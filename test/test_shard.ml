(* The elastic-sharding subsystem (docs/SHARDING.md):
   - Ptable: placement metadata, epochs, visit counters, load signal;
   - snapshots: atomic save, total load, epoch monotonicity across the
     save/load boundary, corrupt files rejected with Error;
   - the graph-fragment wire codec: round-trip and totality;
   - live migration over forked socket servers: answers identical
     before and after a move, strictly increasing snapshot epochs,
     replay after a simulated coordinator restart;
   - the retirement fence: a run routed by a stale placement and
     stamped with the new epoch burns its retry budget and fails with
     the typed [Cluster.Site_unreachable], while a run stamped with an
     older epoch keeps being served from retained data (drain-free);
   - the rebalancer: greedy move-or-split planning and its cooldown. *)

module Wire = Pax_wire.Wire
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Sockio = Pax_net.Sockio
module Server = Pax_net.Server
module Client = Pax_net.Client
module Gfrag = Pax_graph.Gfrag
module Ptable = Pax_shard.Ptable
module Migrate = Pax_shard.Migrate
module Rebalance = Pax_serve.Rebalance
module Coordinator = Pax_serve.Coordinator
module Engines = Pax_core.Engines
module Pe = Pax_engine.Pe
module Query = Pax_xpath.Query

exception Timed_out

let with_timeout secs f =
  let old =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Timed_out))
  in
  ignore (Unix.alarm secs);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm old)
    f

(* ------------------------------------------------------------------ *)
(* Ptable                                                             *)
(* ------------------------------------------------------------------ *)

let test_ptable_basics () =
  let t = Ptable.create ~n_frags:6 ~n_sites:3 ~assign:(fun fid -> fid mod 3) () in
  Alcotest.(check int) "epoch starts at 0" 0 (Ptable.epoch t);
  Alcotest.(check int) "n_frags" 6 (Ptable.n_frags t);
  Alcotest.(check int) "n_sites" 3 (Ptable.n_sites t);
  Alcotest.(check bool) "tree by default" true (Ptable.kind t = Wire.Tree_frag);
  for fid = 0 to 5 do
    Alcotest.(check int) "initial placement" (fid mod 3) (Ptable.site_of t fid)
  done;
  let e1 = Ptable.move t ~fid:4 ~site:0 in
  Alcotest.(check int) "first move is epoch 1" 1 e1;
  Alcotest.(check int) "fragment moved" 0 (Ptable.site_of t 4);
  Alcotest.(check int) "global epoch follows" 1 (Ptable.epoch t);
  let site, fepoch, visits = Ptable.entry t 4 in
  Alcotest.(check (list int)) "entry" [ 0; 1; 0 ] [ site; fepoch; visits ];
  (* A skipped epoch (failed install) leaves a gap but stays monotonic. *)
  let skipped = Ptable.reserve_epoch t in
  Alcotest.(check int) "reserved" 2 skipped;
  let e2 = Ptable.move t ~fid:5 ~site:1 in
  Alcotest.(check int) "next move skips the burned epoch" 3 e2;
  (* commit_move with an epoch from the future (replay) drags the
     global epoch up. *)
  Ptable.commit_move t ~fid:0 ~site:2 ~epoch:9;
  Alcotest.(check int) "replay raises the global epoch" 9 (Ptable.epoch t);
  (* Out-of-range anything is a typed refusal at construction. *)
  (try
     ignore (Ptable.create ~n_frags:2 ~n_sites:2 ~assign:(fun _ -> 7) ());
     Alcotest.fail "out-of-range assign must raise"
   with Invalid_argument _ -> ());
  try
    ignore (Ptable.site_of t 99);
    Alcotest.fail "out-of-range fid must raise"
  with Invalid_argument _ -> ()

let test_ptable_visits () =
  let t = Ptable.create ~n_frags:4 ~n_sites:2 ~assign:(fun fid -> fid mod 2) () in
  Ptable.record_touches t [| 3; 1; 0; 5 |];
  Ptable.record_touches t [| 1; 0; 0; 0 |];
  Alcotest.(check int) "visits accumulate" 4 (Ptable.visits t 0);
  Alcotest.(check (array int))
    "site loads sum placed fragments" [| 4; 6 |] (Ptable.site_loads t);
  (* Loads follow the fragment when it moves. *)
  ignore (Ptable.move t ~fid:3 ~site:0);
  Alcotest.(check (array int)) "loads follow moves" [| 9; 1 |]
    (Ptable.site_loads t);
  (try
     Ptable.record_touches t [| 1; 2 |];
     Alcotest.fail "wrong-length touches must raise"
   with Invalid_argument _ -> ());
  Ptable.reset_visits t;
  Alcotest.(check (array int)) "reset" [| 0; 0 |] (Ptable.site_loads t)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                          *)
(* ------------------------------------------------------------------ *)

let temp_path () = Filename.temp_file "pax_shard" ".placement"

let test_snapshot_roundtrip () =
  let t =
    Ptable.create ~kind:Wire.Graph_frag ~n_frags:5 ~n_sites:3
      ~assign:(fun fid -> fid mod 3)
      ()
  in
  ignore (Ptable.move t ~fid:2 ~site:0);
  ignore (Ptable.move t ~fid:4 ~site:0);
  Ptable.record_touches t [| 7; 0; 2; 0; 1 |];
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with _ -> ())
    (fun () ->
      Ptable.save t path;
      match Ptable.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok t' ->
          Alcotest.(check bool) "kind survives" true
            (Ptable.kind t' = Wire.Graph_frag);
          Alcotest.(check int) "epoch survives" (Ptable.epoch t)
            (Ptable.epoch t');
          Alcotest.(check (list (list int)))
            "entries survive"
            (List.map (fun (a, b, c, d) -> [ a; b; c; d ]) (Ptable.to_list t))
            (List.map (fun (a, b, c, d) -> [ a; b; c; d ]) (Ptable.to_list t'));
          (* Epochs keep moving forward after the reload — the
             monotonicity replay relies on. *)
          let before = Ptable.epoch t' in
          let e = Ptable.move t' ~fid:0 ~site:1 in
          Alcotest.(check bool) "post-load epochs stay monotonic" true
            (e > before))

let test_snapshot_corrupt () =
  let reject name content =
    let path = temp_path () in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with _ -> ())
      (fun () ->
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        match Ptable.load path with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "%s: corrupt snapshot must be rejected" name)
  in
  reject "garbage" "not a placement\n";
  reject "empty" "";
  reject "bad dims" "pax-placement 1 tree\nfrags x sites 2 epoch 0\n";
  reject "missing fragment" "pax-placement 1 tree\nfrags 2 sites 2 epoch 0\n0 0 0 0\n";
  reject "duplicate fragment"
    "pax-placement 1 tree\nfrags 2 sites 2 epoch 0\n0 0 0 0\n0 1 0 0\n";
  reject "site out of range"
    "pax-placement 1 tree\nfrags 1 sites 2 epoch 0\n0 5 0 0\n";
  reject "entry epoch ahead of global"
    "pax-placement 1 tree\nfrags 1 sites 2 epoch 1\n0 0 5 0\n";
  match Ptable.load "/nonexistent/pax.placement" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must be Error"

(* ------------------------------------------------------------------ *)
(* Graph-fragment wire codec                                          *)
(* ------------------------------------------------------------------ *)

let sample_partition () =
  let n = 48 in
  let st = Random.State.make [| 0x5eed; 8 |] in
  let edges =
    List.init 140 (fun _ -> (Random.State.int st n, Random.State.int st n))
  in
  let owner = Array.init n (fun v -> v mod 4) in
  Gfrag.partition ~n ~edges ~owner

let test_gfrag_roundtrip () =
  let g = sample_partition () in
  for fid = 0 to Gfrag.n_fragments g - 1 do
    let frag = Gfrag.fragment g fid in
    match Gfrag.decode (Gfrag.encode frag) with
    | None -> Alcotest.failf "fragment %d: decode of own encoding failed" fid
    | Some frag' ->
        Alcotest.(check bool)
          (Printf.sprintf "fragment %d round-trips" fid)
          true (frag = frag')
  done

let test_gfrag_total () =
  let g = sample_partition () in
  let s = Gfrag.encode (Gfrag.fragment g 1) in
  Alcotest.(check (option reject)) "empty image" None (Gfrag.decode "");
  Alcotest.(check (option reject)) "bad magic" None
    (Gfrag.decode ("x" ^ String.sub s 1 (String.length s - 1)));
  Alcotest.(check (option reject)) "truncated image" None
    (Gfrag.decode (String.sub s 0 (String.length s - 1)));
  (* Totality: flipping any single byte must never raise; if the
     mutant still decodes, the codec's invariants vetted it. *)
  for i = 0 to String.length s - 1 do
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    ignore (Gfrag.decode (Bytes.to_string b))
  done

(* ------------------------------------------------------------------ *)
(* Rebalancer planning                                                *)
(* ------------------------------------------------------------------ *)

let test_rebalance_plan () =
  let t = Ptable.create ~n_frags:4 ~n_sites:2 ~assign:(fun _ -> 0) () in
  Ptable.record_touches t [| 10; 5; 1; 0 |];
  let rb = Rebalance.create t in
  (match Rebalance.plan_one rb ~now:0. with
  | Some { Rebalance.rb_fid = 0; rb_from = 0; rb_to = 1 } -> ()
  | Some m ->
      Alcotest.failf "planned fragment %d %d->%d, wanted the hottest (0 0->1)"
        m.Rebalance.rb_fid m.Rebalance.rb_from m.Rebalance.rb_to
  | None -> Alcotest.fail "imbalanced table must yield a plan");
  (* Execute: one move rebalances 16/0 into 6/10; the moved fragment
     is then cooling down, and every further move would just relocate
     the hotspot, so the run stops itself. *)
  (match Rebalance.run rb ~now:0. with
  | Ok [ { Migrate.mv_fid = 0; mv_from = 0; mv_to = 1; mv_epoch = 1 } ] -> ()
  | Ok ms -> Alcotest.failf "expected exactly one move, got %d" (List.length ms)
  | Error e -> Alcotest.failf "rebalance failed: %s" e);
  Alcotest.(check int) "fragment landed" 1 (Ptable.site_of t 0);
  Alcotest.(check (array int)) "loads after" [| 6; 10 |] (Ptable.site_loads t)

let test_rebalance_skips_too_hot () =
  (* Fragment 0 carries so much load that moving it onto the cold site
     would merely relocate the hotspot (150 > 104): the "needs a
     split" case.  The policy must fall through to the site's
     next-hottest fragment instead. *)
  let t =
    Ptable.create ~n_frags:3 ~n_sites:2
      ~assign:(fun fid -> if fid = 2 then 1 else 0)
      ()
  in
  Ptable.record_touches t [| 100; 4; 50 |];
  let rb = Rebalance.create t in
  match Rebalance.plan_one rb ~now:0. with
  | Some { Rebalance.rb_fid = 1; rb_from = 0; rb_to = 1 } -> ()
  | Some m -> Alcotest.failf "planned fragment %d, wanted 1" m.Rebalance.rb_fid
  | None -> Alcotest.fail "must plan the next-hottest fragment"

let test_rebalance_cooldown () =
  let t =
    Ptable.create ~n_frags:3 ~n_sites:2
      ~assign:(fun fid -> if fid = 2 then 1 else 0)
      ()
  in
  Ptable.record_touches t [| 10; 4; 0 |];
  let rb = Rebalance.create t in
  (match Rebalance.step rb ~now:0. with
  | Ok (Some o) -> Alcotest.(check int) "hottest moves first" 0 o.Migrate.mv_fid
  | Ok None -> Alcotest.fail "first step must move"
  | Error e -> Alcotest.failf "step failed: %s" e);
  (* New load shape: the just-moved fragment is again the hottest on
     the (new) hot site, but it is cooling down — the planner must
     pick the site's next-hottest instead... *)
  Ptable.reset_visits t;
  Ptable.record_touches t [| 9; 0; 6 |];
  (match Rebalance.plan_one rb ~now:10. with
  | Some { Rebalance.rb_fid = 2; rb_from = 1; rb_to = 0 } -> ()
  | Some m ->
      Alcotest.failf "fragment %d planned during fragment 0's cooldown"
        m.Rebalance.rb_fid
  | None -> Alcotest.fail "the cooled next-hottest fragment must be movable");
  (* ...and once the cooldown lapses the hottest wins again. *)
  match Rebalance.plan_one rb ~now:100. with
  | Some { Rebalance.rb_fid = 0; rb_from = 1; rb_to = 0 } -> ()
  | Some m -> Alcotest.failf "planned fragment %d, wanted 0" m.Rebalance.rb_fid
  | None -> Alcotest.fail "cooled-down fragment must be movable"

(* ------------------------------------------------------------------ *)
(* Live migration over forked socket servers                          *)
(* ------------------------------------------------------------------ *)

let n_sites = 3

let make_ft () =
  let doc = Pax_xmark.Xmark.doc ~seed:11 ~total_nodes:1600 ~n_sites:4 in
  Fragment.fragmentize doc ~cuts:(Fragment.cuts_by_tag doc ~tag:"site")

(* Fork one server per site under [assign], hand the mux to [f]. *)
let with_servers ft ~assign f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pax_shard_test_%d_%d" (Unix.getpid ())
         (Random.int 100000))
  in
  Sys.mkdir dir 0o755;
  let addrs =
    Array.init n_sites (fun site ->
        Sockio.Unix_path (Filename.concat dir (Printf.sprintf "s%d.sock" site)))
  in
  let site_frags site =
    List.filter_map
      (fun fid ->
        if assign fid = site then
          Some (fid, (Fragment.fragment ft fid).Fragment.root)
        else None)
      (List.init (Fragment.n_fragments ft) Fun.id)
  in
  let pids =
    Array.to_list
      (Array.mapi
         (fun site addr -> Server.spawn ~addr ~frags:(site_frags site) ())
         addrs)
  in
  let mux = Client.create ~timeout:20. ~addrs () in
  Fun.protect
    ~finally:(fun () ->
      Client.shutdown_sites mux;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        pids;
      Array.iter
        (fun a ->
          match a with
          | Sockio.Unix_path p -> ( try Sys.remove p with _ -> ())
          | Sockio.Tcp _ -> ())
        addrs;
      try Sys.rmdir dir with _ -> ())
    (fun () -> f mux)

let query = "//person[profile/education]"

let run_coord coord q =
  match Coordinator.run coord q with
  | Ok (o : Pe.outcome) ->
      Alcotest.(check bool) "audit passes" true o.Pe.audit.Pax_obs.Audit.pass;
      o.Pe.answer_keys
  | Error e -> Alcotest.failf "run rejected: %s" (Coordinator.error_message e)

let test_socket_migrate () =
  with_timeout 120 (fun () ->
      let ft = make_ft () in
      let n_frags = Fragment.n_fragments ft in
      let table =
        Ptable.create ~n_frags ~n_sites ~assign:(fun fid -> fid mod n_sites) ()
      in
      with_servers ft ~assign:(Ptable.assign table) (fun mux ->
          let mk_coord () =
            Coordinator.create ~max_inflight:2 (Coordinator.Sockets mux)
              [
                Coordinator.mount ~table
                  (Engines.pax2 ft ~n_sites ~assign:(Ptable.assign table));
              ]
          in
          let coord = mk_coord () in
          let baseline = run_coord coord query in
          Alcotest.(check bool) "query answers" true (baseline <> []);
          (* Snapshots straddling the move carry strictly increasing
             epochs. *)
          let path = temp_path () in
          Fun.protect
            ~finally:(fun () -> try Sys.remove path with _ -> ())
            (fun () ->
              Ptable.save table path;
              let epoch_before = Ptable.epoch table in
              let fid = n_frags / 2 in
              let src = Ptable.site_of table fid in
              let dst = (src + 1) mod n_sites in
              (match Migrate.move ~mux ~ft ~table ~fid ~dst () with
              | Ok o ->
                  Alcotest.(check int) "moved from" src o.Migrate.mv_from;
                  Alcotest.(check int) "moved to" dst o.Migrate.mv_to;
                  Alcotest.(check bool) "epoch bumped" true
                    (o.Migrate.mv_epoch > epoch_before)
              | Error e -> Alcotest.failf "migration failed: %s" e);
              Alcotest.(check int) "table routes to the target" dst
                (Ptable.site_of table fid);
              Ptable.save table path;
              (match Ptable.load path with
              | Ok t' ->
                  Alcotest.(check bool) "snapshot epoch is post-move" true
                    (Ptable.epoch t' > epoch_before)
              | Error e -> Alcotest.failf "snapshot load: %s" e);
              (* Same answers through the new placement. *)
              Alcotest.(check (list int)) "answers survive the move" baseline
                (run_coord coord query);
              Coordinator.close coord;
              (* Simulated coordinator restart: reload the snapshot,
                 replay it against the still-running servers, serve
                 again.  Replaying completed installs is idempotent. *)
              match Ptable.load path with
              | Error e -> Alcotest.failf "reload: %s" e
              | Ok table' -> (
                  match Migrate.replay ~mux ~table:table' () with
                  | Error e -> Alcotest.failf "replay: %s" e
                  | Ok () ->
                      let coord' =
                        Coordinator.create ~max_inflight:2
                          (Coordinator.Sockets mux)
                          [
                            Coordinator.mount ~table:table'
                              (Engines.pax2 ft ~n_sites
                                 ~assign:(Ptable.assign table'));
                          ]
                      in
                      Alcotest.(check (list int))
                        "answers survive the restart" baseline
                        (run_coord coord' query);
                      Coordinator.close coord'))))

(* The retirement fence, both directions: a post-move epoch routed to
   the retired source is refused until the retry budget burns out
   (typed [Site_unreachable]); a pre-move epoch keeps being served
   from the data the source retained. *)
let test_stale_epoch_fence () =
  with_timeout 120 (fun () ->
      let ft = make_ft () in
      let n_frags = Fragment.n_fragments ft in
      let table =
        Ptable.create ~n_frags ~n_sites ~assign:(fun fid -> fid mod n_sites) ()
      in
      with_servers ft ~assign:(Ptable.assign table) (fun mux ->
          let q = Query.of_string query in
          let old_assign = Array.init n_frags (Ptable.assign table) in
          let run_at_epoch epoch =
            let handle = Client.handle mux in
            Client.set_epoch handle epoch;
            let tr = Client.handle_transport handle in
            Fun.protect
              ~finally:(fun () -> tr.Pax_dist.Transport.close ())
              (fun () ->
                let cl =
                  Pax_dist.Placement.cluster_round_robin ft ~n_sites
                in
                Cluster.set_transport cl (Some tr);
                Cluster.set_retry cl
                  {
                    Pax_dist.Retry.max_attempts = 3;
                    base_delay = 0.01;
                    multiplier = 1.;
                    max_delay = 0.01;
                  };
                (Pax_core.Pax2.run cl q).Pax_core.Run_result.answer_ids)
          in
          let baseline = run_at_epoch 0 in
          (* Move a fragment away; round-robin is now stale routing. *)
          let fid = n_frags / 2 in
          let dst = (Ptable.site_of table fid + 1) mod n_sites in
          (match Migrate.move ~mux ~ft ~table ~fid ~dst () with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "migration failed: %s" e);
          Alcotest.(check int) "round-robin was the old placement"
            old_assign.(fid)
            (fid mod n_sites);
          (* New-epoch run, old routing: the fence refuses every
             attempt, the retry budget burns, the failure is typed. *)
          (match run_at_epoch (Ptable.epoch table) with
          | _ -> Alcotest.fail "stale routing at the new epoch must fail"
          | exception Cluster.Site_unreachable { attempts; _ } ->
              Alcotest.(check int) "full retry budget burned" 3 attempts);
          (* Old-epoch run, old routing: retained data still serves it
             — the drain-free half of the fence. *)
          Alcotest.(check (list int)) "pre-move epochs keep being served"
            baseline (run_at_epoch 0)))

let () =
  Random.self_init ();
  Alcotest.run "shard"
    [
      ( "ptable",
        [
          Alcotest.test_case "placement and epochs" `Quick test_ptable_basics;
          Alcotest.test_case "visit counters and loads" `Quick
            test_ptable_visits;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "corrupt files rejected" `Quick
            test_snapshot_corrupt;
        ] );
      ( "gfrag-codec",
        [
          Alcotest.test_case "round-trip" `Quick test_gfrag_roundtrip;
          Alcotest.test_case "decoder is total" `Quick test_gfrag_total;
        ] );
      ( "rebalance",
        [
          Alcotest.test_case "greedy plan" `Quick test_rebalance_plan;
          Alcotest.test_case "too-hot fragment skipped" `Quick
            test_rebalance_skips_too_hot;
          Alcotest.test_case "cooldown" `Quick test_rebalance_cooldown;
        ] );
      ( "migration",
        [
          Alcotest.test_case "live move + snapshot + replay" `Quick
            test_socket_migrate;
          Alcotest.test_case "stale-epoch fence is typed" `Quick
            test_stale_epoch_fence;
        ] );
    ]

(* PaX2: the combined traversal, local placeholder unification, and the
   two-visit guarantee. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Formula = Pax_bool.Formula
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Run_result = Pax_core.Run_result
module Combined = Pax_core.Pax2.Combined
module Sel_pass = Pax_core.Sel_pass
module H = Test_helpers

let c = H.Data.clientele ()

let run ?annotations query_text =
  let q = Query.of_string query_text in
  let cl = H.Data.clientele_cluster c in
  let r = Pax_core.Pax2.run ?annotations cl q in
  let expected = Semantics.eval_ids q.Query.ast c.doc.Tree.root in
  Alcotest.(check (list int)) (query_text ^ " correct") expected
    r.Run_result.answer_ids;
  r

let test_two_visits_with_qualifiers () =
  let r = run "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name" in
  Alcotest.(check bool) "max 2 visits" true
    (r.Run_result.report.Cluster.max_visits <= 2);
  Alcotest.(check (list string)) "two rounds" [ "stage1"; "stage2" ]
    r.Run_result.report.Cluster.rounds

let test_single_visit_with_annotations_no_quals () =
  let r = run ~annotations:true "client/name" in
  Alcotest.(check int) "single visit" 1 r.Run_result.report.Cluster.max_visits

let test_combined_on_whole_tree () =
  (* On an unfragmented tree the combined pass resolves everything
     locally: no candidates, answers certain, matching the oracle. *)
  let q = Query.of_string "client[country/text() = \"US\"]/broker/name" in
  let compiled = q.Query.compiled in
  let outcome =
    Combined.run compiled
      ~init:(Sel_pass.blank_init compiled)
      ~root_is_context:true c.doc.Tree.root
  in
  Alcotest.(check int) "no candidates on a complete tree" 0
    (List.length outcome.Combined.candidates);
  Alcotest.(check (list int)) "answers match the oracle"
    (Semantics.eval_ids q.Query.ast c.doc.Tree.root)
    (List.sort compare
       (List.map (fun (n : Tree.node) -> n.Tree.id) outcome.Combined.answers))

let test_combined_placeholders_resolve_locally () =
  (* Every residual the combined pass leaves must only mention boundary
     variables — Qual_at placeholders are gone. *)
  let ft = H.Data.clientele_ftree c in
  let q = Query.of_string "client[country/text() = \"US\"]//stock[qt > 40]/code" in
  let compiled = q.Query.compiled in
  let f0 = (Fragment.fragment ft 0).Fragment.root in
  let outcome =
    Combined.run compiled ~init:(Sel_pass.blank_init compiled)
      ~root_is_context:true f0
  in
  let no_placeholder f =
    List.for_all
      (function Pax_bool.Var.Qual_at _ -> false | _ -> true)
      (Formula.vars f)
  in
  List.iter
    (fun (_, f) ->
      Alcotest.(check bool) "candidate free of placeholders" true
        (no_placeholder f))
    outcome.Combined.candidates;
  List.iter
    (fun (_, vec) ->
      Array.iter
        (fun f ->
          Alcotest.(check bool) "context free of placeholders" true
            (no_placeholder f))
        vec)
    outcome.Combined.contexts;
  Array.iter
    (fun f ->
      Alcotest.(check bool) "root vector free of placeholders" true
        (no_placeholder f))
    outcome.Combined.root_qvec

let test_agrees_with_pax3 () =
  let queries =
    [
      "//broker[//stock/code/text() = \"GOOG\"]/name";
      "client[country/text() = \"US\"]/broker/name";
      "//stock[buy >= 370][qt <= 75]/code";
      "client[not(broker)]";
      "//market[name/text() = \"NASDAQ\"]/stock/code";
    ]
  in
  List.iter
    (fun s ->
      let q = Query.of_string s in
      let cl = H.Data.clientele_cluster c in
      let r2 = Pax_core.Pax2.run cl q in
      let r3 = Pax_core.Pax3.run cl q in
      Alcotest.(check (list int)) (s ^ ": PaX2 = PaX3")
        r3.Run_result.answer_ids r2.Run_result.answer_ids)
    queries

let test_fewer_rounds_than_pax3 () =
  let q =
    Query.of_string
      "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name"
  in
  let cl = H.Data.clientele_cluster c in
  let r2 = Pax_core.Pax2.run cl q in
  let r3 = Pax_core.Pax3.run cl q in
  Alcotest.(check bool) "PaX2 uses fewer visits than PaX3" true
    (r2.Run_result.report.Cluster.max_visits
    < r3.Run_result.report.Cluster.max_visits)

let test_deep_chain_fragmentation () =
  (* A pathological fragment chain: every broker and market its own
     fragment; answers still exact. *)
  let cuts =
    Fragment.cuts_by_tag c.doc ~tag:"broker"
    @ Fragment.cuts_by_tag c.doc ~tag:"market"
    @ Fragment.cuts_by_tag c.doc ~tag:"stock"
  in
  let ft = Fragment.fragmentize c.doc ~cuts in
  let cl = Cluster.one_site_per_fragment ft in
  let q = Query.of_string "//broker[market/stock/qt > 40]/name" in
  let r = Pax_core.Pax2.run cl q in
  Alcotest.(check (list int)) "deep chain correct"
    (Semantics.eval_ids q.Query.ast c.doc.Tree.root)
    r.Run_result.answer_ids;
  Alcotest.(check bool) "still 2 visits max" true
    (r.Run_result.report.Cluster.max_visits <= 2)

let () =
  Alcotest.run "pax2"
    [
      ( "visits",
        [
          Alcotest.test_case "two visits with qualifiers" `Quick
            test_two_visits_with_qualifiers;
          Alcotest.test_case "one visit with annotations" `Quick
            test_single_visit_with_annotations_no_quals;
          Alcotest.test_case "fewer visits than PaX3" `Quick
            test_fewer_rounds_than_pax3;
        ] );
      ( "combined-pass",
        [
          Alcotest.test_case "whole tree" `Quick test_combined_on_whole_tree;
          Alcotest.test_case "placeholders resolve locally" `Quick
            test_combined_placeholders_resolve_locally;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "PaX2 = PaX3" `Quick test_agrees_with_pax3;
          Alcotest.test_case "deep fragment chains" `Quick
            test_deep_chain_fragmentation;
        ] );
    ]

(* Hand-built documents used across the test suites, chief among them
   the investment-company clientele tree of the paper's Fig. 1, with the
   fragmentation F0..F4 of Fig. 2 (F2 nested inside F1). *)

module Tree = Pax_xml.Tree
module Fragment = Pax_frag.Fragment

type clientele = {
  doc : Tree.doc;
  (* node ids of interest *)
  etrade_broker : int;
  etrade_name : int;
  bache_broker : int;
  bache_name : int;
  cibc_broker : int;
  cibc_name : int;
  (* fragment roots, in the paper's numbering F1..F4 *)
  cut_f1 : int;  (* E*trade broker *)
  cut_f2 : int;  (* NASDAQ market under E*trade *)
  cut_f3 : int;  (* CIBC broker *)
  cut_f4 : int;  (* NASDAQ market under Bache *)
}

let stock b ~code ~buy ~qt =
  Tree.elem b "stock"
    [ Tree.leaf b "code" code; Tree.leaf b "buy" buy; Tree.leaf b "qt" qt ]

let market b ~name stocks = Tree.elem b "market" (Tree.leaf b "name" name :: stocks)

let clientele () : clientele =
  let b = Tree.builder () in
  let nasdaq_etrade =
    market b ~name:"NASDAQ"
      [ stock b ~code:"GOOG" ~buy:"374" ~qt:"40";
        stock b ~code:"YHOO" ~buy:"33" ~qt:"40" ]
  in
  let etrade_name = Tree.leaf b "name" "E*trade" in
  let etrade = Tree.elem b "broker" [ etrade_name; nasdaq_etrade ] in
  let anna =
    Tree.elem b "client"
      [ Tree.leaf b "name" "Anna"; Tree.leaf b "country" "US"; etrade ]
  in
  let nyse = market b ~name:"NYSE" [ stock b ~code:"IBM" ~buy:"80" ~qt:"50" ] in
  let nasdaq_bache =
    market b ~name:"NASDAQ" [ stock b ~code:"GOOG" ~buy:"370" ~qt:"75" ]
  in
  let bache_name = Tree.leaf b "name" "Bache" in
  let bache = Tree.elem b "broker" [ bache_name; nyse; nasdaq_bache ] in
  let kim =
    Tree.elem b "client"
      [ Tree.leaf b "name" "Kim"; Tree.leaf b "country" "US"; bache ]
  in
  let tse = market b ~name:"TSE" [ stock b ~code:"GOOG" ~buy:"382" ~qt:"90" ] in
  let cibc_name = Tree.leaf b "name" "CIBC" in
  let cibc = Tree.elem b "broker" [ cibc_name; tse ] in
  let lisa =
    Tree.elem b "client"
      [ Tree.leaf b "name" "Lisa"; Tree.leaf b "country" "Canada"; cibc ]
  in
  let root = Tree.elem b "clientele" [ anna; kim; lisa ] in
  {
    doc = Tree.doc_of_root root;
    etrade_broker = etrade.Tree.id;
    etrade_name = etrade_name.Tree.id;
    bache_broker = bache.Tree.id;
    bache_name = bache_name.Tree.id;
    cibc_broker = cibc.Tree.id;
    cibc_name = cibc_name.Tree.id;
    cut_f1 = etrade.Tree.id;
    cut_f2 = nasdaq_etrade.Tree.id;
    cut_f3 = cibc.Tree.id;
    cut_f4 = nasdaq_bache.Tree.id;
  }

(* The paper's fragmentation: F1 (E*trade broker, containing virtual F2),
   F2 (its NASDAQ market), F3 (CIBC broker), F4 (Bache's NASDAQ market). *)
let clientele_ftree (c : clientele) : Fragment.t =
  Fragment.fragmentize c.doc ~cuts:[ c.cut_f1; c.cut_f2; c.cut_f3; c.cut_f4 ]

(* The paper's site placement (Fig. 2): S0 {F0}, S1 {F1}, S2 {F2, F4},
   S3 {F3}.  Fragment ids here are assigned in document order, so the
   paper's F1..F4 map to discovery order: E*trade broker is discovered
   first (fid 1), its market next... computed dynamically. *)
let clientele_cluster (c : clientele) : Pax_dist.Cluster.t =
  let ft = clientele_ftree c in
  let fid_of_root root_id =
    let rec find fid =
      if fid >= Fragment.n_fragments ft then invalid_arg "fid_of_root"
      else if (Fragment.fragment ft fid).Fragment.root.Tree.id = root_id then fid
      else find (fid + 1)
    in
    find 0
  in
  let f1 = fid_of_root c.cut_f1
  and f2 = fid_of_root c.cut_f2
  and f3 = fid_of_root c.cut_f3
  and f4 = fid_of_root c.cut_f4 in
  Pax_dist.Cluster.create ~ftree:ft ~n_sites:4 ~assign:(fun fid ->
      if fid = 0 then 0
      else if fid = f1 then 1
      else if fid = f2 || fid = f4 then 2
      else if fid = f3 then 3
      else invalid_arg "unexpected fragment")
    ()

(* A tiny XMark-shaped document, handy for query-specific tests. *)
let mini_sites () : Tree.doc =
  let b = Tree.builder () in
  let person ~name ~country ~age ~card =
    Tree.elem b "person"
      (Tree.leaf b "name" name
      :: Tree.elem b "address"
           [ Tree.leaf b "city" "X"; Tree.leaf b "country" country ]
      :: Tree.elem b "profile"
           [ Tree.leaf b "age" (string_of_int age);
             Tree.leaf b "education" "BSc" ]
      ::
      (if card then [ Tree.leaf b "creditcard" "1111 2222" ] else []))
  in
  let auction ~price ~happiness =
    Tree.elem b "open_auction"
      [ Tree.leaf b "initial" (string_of_float price);
        Tree.elem b "annotation"
          [ Tree.leaf b "author" "p0"; Tree.leaf b "happiness" (string_of_int happiness) ] ]
  in
  let site =
    Tree.elem b "site"
      [ Tree.elem b "regions" [ Tree.elem b "namerica" [ Tree.elem b "item" [ Tree.leaf b "name" "thing" ] ] ];
        Tree.elem b "people"
          [ person ~name:"alice" ~country:"US" ~age:31 ~card:true;
            person ~name:"bob" ~country:"US" ~age:19 ~card:true;
            person ~name:"carol" ~country:"FR" ~age:44 ~card:true;
            person ~name:"dave" ~country:"US" ~age:27 ~card:false ];
        Tree.elem b "open_auctions" [ auction ~price:10. ~happiness:7; auction ~price:22. ~happiness:3 ];
        Tree.elem b "closed_auctions" [ Tree.elem b "closed_auction" [ Tree.leaf b "price" "12" ] ] ]
  in
  Tree.doc_of_root (Tree.elem b "sites" [ site ])

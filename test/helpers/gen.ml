(* QCheck generators for random documents, queries and fragmentations.
   Tags and texts are drawn from small alphabets so that random queries
   actually match random data. *)

module Tree = Pax_xml.Tree
module Ast = Pax_xpath.Ast
module G = QCheck.Gen

let tags = [| "a"; "b"; "c"; "d" |]
let texts = [| "x"; "y"; "10"; "2.5"; "7" |]

let tag = G.oneofa tags
let text_opt = G.(oneof [ return None; map Option.some (oneofa texts) ])
let attr_names = [| "id"; "cat" |]

let attrs_gen st =
  if G.bool st then []
  else [ (G.oneofa attr_names st, G.oneofa texts st) ]

(* A random document with at most [max_nodes] nodes. *)
let doc ?(max_nodes = 60) : Tree.doc G.t =
 fun st ->
  let n = G.int_range 1 max_nodes st in
  let b = Tree.builder () in
  let budget = ref (n - 1) in
  let rec build depth =
    let tg = tag st in
    let txt = text_opt st in
    let n_children =
      if depth > 6 || !budget <= 0 then 0
      else begin
        let want = G.int_range 0 (min 4 !budget) st in
        budget := !budget - want;
        want
      end
    in
    let children = List.init n_children (fun _ -> build (depth + 1)) in
    let attrs = attrs_gen st in
    match txt with
    | Some t -> Tree.elem b ~text:t ~attrs tg children
    | None -> Tree.elem b ~attrs tg children
  in
  let root = build 0 in
  Tree.doc_of_root root

(* Random queries over the same alphabets. *)
let cmp = G.oneofl [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]
let num = G.oneofl [ 1.; 2.; 7.; 10. ]

let rec path ~qdepth st : Ast.path =
  let n_seg = G.int_range 1 3 st in
  let seg st : Ast.path =
    let base =
      match G.int_range 0 5 st with
      | 0 -> Ast.Wildcard
      | 1 when qdepth > 0 -> Ast.Empty
      | _ -> Ast.Tag (tag st)
    in
    if qdepth > 0 && G.bool st then Ast.Qualified (base, qual ~qdepth:(qdepth - 1) st)
    else base
  in
  let rec extend acc k =
    if k = 0 then acc
    else
      let s = seg st in
      let acc = if G.int_range 0 3 st = 0 then Ast.Dslash (acc, s) else Ast.Slash (acc, s) in
      extend acc (k - 1)
  in
  let first = seg st in
  let p = extend first (n_seg - 1) in
  if G.int_range 0 4 st = 0 then Ast.Dslash (Ast.Empty, p) else p

and qual ~qdepth st : Ast.qual =
  match G.int_range 0 7 st with
  | 0 -> Ast.QText (path ~qdepth:0 st, G.oneofa texts st)
  | 1 -> Ast.QVal (path ~qdepth:0 st, cmp st, num st)
  | 6 ->
      let value = if G.bool st then Some (G.oneofa texts st) else None in
      Ast.QAttr (path ~qdepth:0 st, G.oneofa attr_names st, value)
  | 2 when qdepth > 0 -> Ast.QNot (qual ~qdepth:(qdepth - 1) st)
  | 3 when qdepth > 0 ->
      Ast.QAnd (qual ~qdepth:(qdepth - 1) st, qual ~qdepth:(qdepth - 1) st)
  | 4 when qdepth > 0 ->
      Ast.QOr (qual ~qdepth:(qdepth - 1) st, qual ~qdepth:(qdepth - 1) st)
  | _ -> Ast.QPath (path ~qdepth:(max 0 (qdepth - 1)) st)

let query : Ast.t G.t =
 fun st ->
  let absolute = G.bool st in
  { Ast.absolute; path = path ~qdepth:2 st }

(* Random cut set for a document: each non-root node with probability
   [p]. *)
let cuts ?(p = 0.2) (d : Tree.doc) : int list G.t =
 fun st ->
  let acc = ref [] in
  Tree.iter
    (fun n ->
      if n.Tree.id <> d.Tree.root.Tree.id && G.float_bound_inclusive 1.0 st < p
      then acc := n.Tree.id :: !acc)
    d.Tree.root;
  !acc

(* A random placement of the fragments on 1..n sites. *)
let cluster (ft : Pax_frag.Fragment.t) : Pax_dist.Cluster.t G.t =
 fun st ->
  let n_frag = Pax_frag.Fragment.n_fragments ft in
  let n_sites = G.int_range 1 n_frag st in
  let assignment = Array.init n_frag (fun _ -> G.int_range 0 (n_sites - 1) st) in
  Pax_dist.Cluster.create ~ftree:ft ~n_sites ~assign:(fun fid -> assignment.(fid)) ()

(* The full scenario: document + query + fragmentation + placement. *)
type scenario = {
  s_doc : Tree.doc;
  s_query : Ast.t;
  s_cluster : Pax_dist.Cluster.t;
}

let scenario : scenario G.t =
 fun st ->
  let s_doc = doc st in
  let s_query = query st in
  let cs = cuts s_doc st in
  let ft = Pax_frag.Fragment.fragmentize s_doc ~cuts:cs in
  let s_cluster = cluster ft st in
  { s_doc; s_query; s_cluster }

let print_scenario (s : scenario) =
  Format.asprintf "query: %a@.doc: %a@.fragments: %a@." Ast.pp s.s_query
    Tree.pp s.s_doc.Tree.root Pax_frag.Fragment.pp
    (Pax_dist.Cluster.ftree s.s_cluster)

let arbitrary_scenario = QCheck.make ~print:print_scenario scenario

(* ---------------- graph reachability scenarios --------------------- *)

(* A random fragmented digraph plus a reachability question and a
   placement, as plain data so the generator does not depend on the
   graph library itself (the tests build Gfrag.partition / clusters
   from these fields). *)
type gscenario = {
  g_n : int;  (* nodes, numbered 0..g_n-1 *)
  g_edges : (int * int) list;
  g_owner : int array;  (* node -> fragment, fragments 0..g_n_frags-1 *)
  g_n_frags : int;
  g_src : int;
  g_dst : int;
  g_n_sites : int;
  g_assign : int array;  (* fragment -> site *)
}

let gscenario : gscenario G.t =
 fun st ->
  let g_n = G.int_range 1 40 st in
  (* Sparse-ish: on average ~2.5 out-edges per node, self-loops and
     duplicates allowed (the partitioner dedups). *)
  let n_edges = G.int_range 0 (5 * g_n / 2) st in
  let g_edges =
    List.init n_edges (fun _ ->
        (G.int_range 0 (g_n - 1) st, G.int_range 0 (g_n - 1) st))
  in
  let g_n_frags = G.int_range 1 (min 6 g_n) st in
  let g_owner = Array.init g_n (fun _ -> G.int_range 0 (g_n_frags - 1) st) in
  (* Every fragment id must own at least one node or the partitioner's
     fragment count drops; pin node i to fragment i for the first
     [g_n_frags] nodes. *)
  Array.iteri (fun i _ -> if i < g_n_frags then g_owner.(i) <- i) g_owner;
  let g_src = G.int_range 0 (g_n - 1) st in
  let g_dst = G.int_range 0 (g_n - 1) st in
  let g_n_sites = G.int_range 1 g_n_frags st in
  let g_assign =
    Array.init g_n_frags (fun _ -> G.int_range 0 (g_n_sites - 1) st)
  in
  { g_n; g_edges; g_owner; g_n_frags; g_src; g_dst; g_n_sites; g_assign }

let print_gscenario (g : gscenario) =
  Format.asprintf
    "n=%d frags=%d sites=%d src=%d dst=%d@.owner=[%s]@.assign=[%s]@.edges=[%s]@."
    g.g_n g.g_n_frags g.g_n_sites g.g_src g.g_dst
    (String.concat ";" (Array.to_list (Array.map string_of_int g.g_owner)))
    (String.concat ";" (Array.to_list (Array.map string_of_int g.g_assign)))
    (String.concat ";"
       (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) g.g_edges))

let arbitrary_gscenario = QCheck.make ~print:print_gscenario gscenario

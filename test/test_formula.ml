(* Unit and property tests for the residual-formula engine. *)

module F = Pax_bool.Formula
module Var = Pax_bool.Var

let x = Var.Qual (1, 0)
let y = Var.Qual (2, 3)
let z = Var.Sel_ctx (1, 2)
let fx = F.var x
let fy = F.var y
let fz = F.var z
let check_f = Alcotest.(check string)
let s f = F.to_string f

let test_constants () =
  check_f "and [] is true" "T" (s (F.and_ []));
  check_f "or [] is false" "F" (s (F.or_ []));
  check_f "true wins in or" "T" (s (F.or_ [ fx; F.true_ ]));
  check_f "false wins in and" "F" (s (F.and_ [ fx; F.false_ ]));
  check_f "units drop" (s fx) (s (F.and_ [ F.true_; fx ]));
  check_f "absorbing or" (s fx) (s (F.or_ [ F.false_; fx ]))

let test_involution () =
  check_f "double negation" (s fx) (s (F.not_ (F.not_ fx)));
  check_f "not true" "F" (s (F.not_ F.true_));
  check_f "not false" "T" (s (F.not_ F.false_))

let test_flattening () =
  let f = F.and_ [ fx; F.and_ [ fy; fz ] ] in
  (match f with
  | F.And l -> Alcotest.(check int) "flat conjunction" 3 (List.length l)
  | _ -> Alcotest.fail "expected a conjunction");
  let g = F.or_ [ F.or_ [ fx; fy ]; fz ] in
  match g with
  | F.Or l -> Alcotest.(check int) "flat disjunction" 3 (List.length l)
  | _ -> Alcotest.fail "expected a disjunction"

let test_duplicates () =
  check_f "idempotent and" (s fx) (s (F.and_ [ fx; fx ]));
  check_f "idempotent or" (s fx) (s (F.or_ [ fx; fx; fx ]))

let test_subst () =
  let f = F.conj fx (F.disj fy fz) in
  let lookup v = if Var.equal v x then Some F.true_ else None in
  check_f "partial substitution" (s (F.disj fy fz)) (s (F.subst lookup f));
  let all v =
    if Var.equal v x then Some F.true_
    else if Var.equal v y then Some F.false_
    else Some F.true_
  in
  check_f "full substitution grounds" "T" (s (F.subst all f))

let test_vars () =
  let f = F.conj fx (F.disj fy (F.not_ fx)) in
  Alcotest.(check int) "two distinct variables" 2 (List.length (F.vars f));
  Alcotest.(check bool) "not ground" false (F.is_ground f);
  Alcotest.(check bool) "constants are ground" true (F.is_ground F.true_)

(* Random formulas for property tests. *)
let gen_formula : F.t QCheck.Gen.t =
  let open QCheck.Gen in
  let var_gen =
    oneofl [ Var.Qual (0, 0); Var.Qual (1, 1); Var.Sel_ctx (0, 2); Var.Qual_at (5, 0) ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 1 then
           oneof [ return F.true_; return F.false_; map F.var var_gen ]
         else
           oneof
             [
               map F.var var_gen;
               map F.not_ (self (n / 2));
               map2 F.conj (self (n / 2)) (self (n / 2));
               map2 F.disj (self (n / 2)) (self (n / 2));
               map F.and_ (list_size (int_range 0 4) (self (n / 4)));
               map F.or_ (list_size (int_range 0 4) (self (n / 4)));
             ])

let arbitrary_formula = QCheck.make ~print:F.to_string gen_formula

let valuation_of_seed seed v = Hashtbl.hash (seed, Var.hash v) mod 2 = 0

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 arb f)

let semantics_props =
  [
    prop "conj means &&"
      (QCheck.pair arbitrary_formula arbitrary_formula) (fun (a, b) ->
        let v = valuation_of_seed 1 in
        F.eval v (F.conj a b) = (F.eval v a && F.eval v b));
    prop "disj means ||"
      (QCheck.pair arbitrary_formula arbitrary_formula) (fun (a, b) ->
        let v = valuation_of_seed 2 in
        F.eval v (F.disj a b) = (F.eval v a || F.eval v b));
    prop "not means not" arbitrary_formula (fun a ->
        let v = valuation_of_seed 3 in
        F.eval v (F.not_ a) = not (F.eval v a));
    prop "ground formulas are constants" arbitrary_formula (fun a ->
        let lookup v = Some (F.bool (valuation_of_seed 4 v)) in
        match F.to_bool (F.subst lookup a) with
        | Some b -> b = F.eval (valuation_of_seed 4) a
        | None -> false);
    prop "subst with empty lookup is identity" arbitrary_formula (fun a ->
        F.equal (F.subst (fun _ -> None) a) a);
    prop "size positive" arbitrary_formula (fun a -> F.size a >= 1);
    prop "byte size positive" arbitrary_formula (fun a -> F.byte_size a >= 1);
    prop "vars of ground subst are empty" arbitrary_formula (fun a ->
        let lookup _ = Some F.false_ in
        F.vars (F.subst lookup a) = []);
  ]

let () =
  Alcotest.run "formula"
    [
      ( "unit",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "involution" `Quick test_involution;
          Alcotest.test_case "flattening" `Quick test_flattening;
          Alcotest.test_case "duplicates" `Quick test_duplicates;
          Alcotest.test_case "substitution" `Quick test_subst;
          Alcotest.test_case "variables" `Quick test_vars;
        ] );
      ("properties", semantics_props);
    ]

(* Wire codec: exact round trips, length accounting, decode errors. *)

module F = Pax_bool.Formula
module Var = Pax_bool.Var
module Codec = Pax_bool.Codec

(* Reuse the formula generator shape from test_formula. *)
let gen_formula : F.t QCheck.Gen.t =
  let open QCheck.Gen in
  let var_gen =
    oneofl
      [ Var.Qual (0, 0); Var.Qual (127, 128); Var.Sel_ctx (300, 2);
        Var.Qual_at (99999, 17) ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 1 then oneof [ return F.true_; return F.false_; map F.var var_gen ]
         else
           oneof
             [
               map F.var var_gen;
               map F.not_ (self (n / 2));
               map2 F.conj (self (n / 2)) (self (n / 2));
               map2 F.disj (self (n / 2)) (self (n / 2));
             ])

let arbitrary_formula = QCheck.make ~print:F.to_string gen_formula

let props =
  [
    QCheck.Test.make ~name:"formula round trip" ~count:1000 arbitrary_formula
      (fun f -> F.equal (Codec.formula_of_string (Codec.formula_to_string f)) f);
    QCheck.Test.make ~name:"encoded length matches formula_bytes" ~count:500
      arbitrary_formula (fun f ->
        String.length (Codec.formula_to_string f) = Codec.formula_bytes f);
    QCheck.Test.make ~name:"vector round trip" ~count:300
      (QCheck.make
         QCheck.Gen.(list_size (int_range 0 12) gen_formula))
      (fun fs ->
        let a = Array.of_list fs in
        let b = Codec.formula_array_of_string (Codec.formula_array_to_string a) in
        Array.length a = Array.length b
        && Array.for_all2 F.equal a b);
    QCheck.Test.make ~name:"bool array round trip" ~count:300
      QCheck.(list bool)
      (fun bs ->
        let a = Array.of_list bs in
        Codec.bool_array_of_string (Codec.bool_array_to_string a) = a);
    QCheck.Test.make ~name:"bool array length" ~count:300 QCheck.(list bool)
      (fun bs ->
        let a = Array.of_list bs in
        String.length (Codec.bool_array_to_string a) = Codec.bool_array_bytes a);
  ]

(* Totality fuzz: mutate valid encodings (byte flips, truncation,
   garbage suffixes) — the [_opt] decoders must return, never raise.
   Where they do decode, a re-encode/decode round trip must agree
   (no partially-corrupt value sneaks through as unstable). *)
let gen_mutations : (string -> string) QCheck.Gen.t =
  let open QCheck.Gen in
  let flip_byte =
    pair (int_bound 10_000) (int_bound 255) >|= fun (pos, b) s ->
    if s = "" then s
    else begin
      let bs = Bytes.of_string s in
      Bytes.set bs (pos mod Bytes.length bs) (Char.chr b);
      Bytes.to_string bs
    end
  in
  let truncate =
    int_bound 10_000 >|= fun n s -> String.sub s 0 (n mod (String.length s + 1))
  in
  let append = string_size (int_range 1 5) >|= fun junk s -> s ^ junk in
  list_size (int_range 1 4) (oneof [ flip_byte; truncate; append ])
  >|= fun ms s -> List.fold_left (fun acc m -> m acc) s ms

let total_after_mutation (type a) name count gen encode
    (decode_opt : string -> a option) =
  QCheck.Test.make ~name ~count
    (QCheck.make QCheck.Gen.(pair gen gen_mutations))
    (fun (x, mutate) ->
      match decode_opt (mutate (encode x)) with
      | None -> true
      | Some _ -> true)

let fuzz =
  [
    total_after_mutation "mutated formula never raises" 2000 gen_formula
      Codec.formula_to_string Codec.formula_of_string_opt;
    total_after_mutation "mutated vector never raises" 1000
      QCheck.Gen.(map Array.of_list (list_size (int_range 0 12) gen_formula))
      Codec.formula_array_to_string Codec.formula_array_of_string_opt;
    total_after_mutation "mutated bool array never raises" 1000
      QCheck.Gen.(map Array.of_list (list bool))
      Codec.bool_array_to_string Codec.bool_array_of_string_opt;
    QCheck.Test.make ~name:"opt agrees with raising decoder" ~count:500
      arbitrary_formula (fun f ->
        match Codec.formula_of_string_opt (Codec.formula_to_string f) with
        | Some g -> F.equal f g
        | None -> false);
  ]

let test_compactness () =
  (* A ground vector of 64 entries costs ~65 bytes, not 64 words. *)
  let vec = Array.make 64 F.true_ in
  Alcotest.(check bool) "ground vectors are tiny" true
    (Codec.formula_array_bytes vec <= 66);
  (* Variables with small ids: 3 bytes. *)
  Alcotest.(check int) "small var" 3
    (Codec.formula_bytes (F.var (Var.Qual (1, 2))));
  (* Large ids grow gently (varint). *)
  Alcotest.(check bool) "large var still small" true
    (Codec.formula_bytes (F.var (Var.Qual_at (1_000_000, 200))) <= 6)

let test_decode_errors () =
  let fails s =
    match Codec.formula_of_string s with
    | exception Codec.Decode_error _ -> ()
    | _ -> Alcotest.fail "should not decode"
  in
  fails "";
  fails "\xff";
  fails "\x02" (* Not without operand *);
  fails "\x00\x00" (* trailing bytes *);
  match Codec.bool_array_of_string "\x20" with
  | exception Codec.Decode_error _ -> ()
  | _ -> Alcotest.fail "truncated bools must fail"

let () =
  Alcotest.run "codec"
    [
      ( "unit",
        [
          Alcotest.test_case "compactness" `Quick test_compactness;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
        ] );
      ("roundtrip", List.map QCheck_alcotest.to_alcotest props);
      ("fuzz", List.map QCheck_alcotest.to_alcotest fuzz);
    ]

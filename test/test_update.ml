(* Distributed updates: routing to the owning fragment, invariant
   preservation, and queries staying correct after mutation. *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Semantics = Pax_xpath.Semantics
module Fragment = Pax_frag.Fragment
module Update = Pax_frag.Update
module H = Test_helpers

(* Fresh state per test: the clientele tree, fragmented as in Fig. 2. *)
let setup () =
  let c = H.Data.clientele () in
  (c, H.Data.clientele_ftree c)

let reassembled_query ft qs =
  let root = Fragment.reassemble ft in
  Semantics.eval (Pax_xpath.Parse.query qs) root

let test_set_text () =
  let c, ft = setup () in
  (match Update.apply ft (Update.Set_text (c.H.Data.etrade_name, "Etrade Inc")) with
  | Ok _fid -> ()
  | Error e -> Alcotest.fail (Update.error_to_string e));
  let names = reassembled_query ft "//broker/name" in
  Alcotest.(check bool) "name updated" true
    (List.exists (fun n -> Tree.text_of n = "Etrade Inc") names);
  Alcotest.(check bool) "old name gone" false
    (List.exists (fun n -> Tree.text_of n = "E*trade") names)

let test_insert () =
  let c, ft = setup () in
  (* Give Lisa's CIBC broker a new market, built with fresh ids. *)
  let b = Tree.builder_from 10_000 in
  let new_market =
    Tree.elem b "market"
      [
        Tree.leaf b "name" "LSE";
        Tree.elem b "stock"
          [ Tree.leaf b "code" "VOD"; Tree.leaf b "buy" "120"; Tree.leaf b "qt" "10" ];
      ]
  in
  (match Update.apply ft (Update.Insert (c.H.Data.cibc_broker, new_market)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Update.error_to_string e));
  let markets = reassembled_query ft "//broker[name/text() = \"CIBC\"]/market" in
  Alcotest.(check int) "CIBC now has two markets" 2 (List.length markets);
  let vod = reassembled_query ft "//stock[code/text() = \"VOD\"]" in
  Alcotest.(check int) "new stock visible" 1 (List.length vod)

let test_insert_duplicate_ids_rejected () =
  let c, ft = setup () in
  let b = Tree.builder () (* ids collide with the document *) in
  let clash = Tree.leaf b "x" "y" in
  match Update.apply ft (Update.Insert (c.H.Data.cibc_broker, clash)) with
  | Error (Update.Duplicate_ids _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "duplicate ids must be rejected"

let test_delete () =
  let c, ft = setup () in
  let before = List.length (reassembled_query ft "//stock") in
  (* Delete Bache's NYSE market (entirely inside F0). *)
  let nyse =
    List.find
      (fun (n : Tree.node) ->
        List.exists (fun (c : Tree.node) -> Tree.text_of c = "NYSE") n.Tree.children)
      (Tree.select (fun n -> n.Tree.tag = "market") c.H.Data.doc.Tree.root)
  in
  (match Update.apply ft (Update.Delete nyse.Tree.id) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Update.error_to_string e));
  let after = List.length (reassembled_query ft "//stock") in
  Alcotest.(check int) "one stock fewer" (before - 1) after

let test_delete_fragment_root_rejected () =
  let c, ft = setup () in
  match Update.apply ft (Update.Delete c.H.Data.cut_f1) with
  | Error (Update.Is_fragment_root _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "fragment roots cannot be deleted"

let test_delete_spanning_rejected () =
  let c, ft = setup () in
  (* Anna's whole client subtree contains the virtual node for F1. *)
  let anna_client =
    List.find
      (fun (n : Tree.node) ->
        List.exists (fun (c : Tree.node) -> Tree.text_of c = "Anna") n.Tree.children)
      c.H.Data.doc.Tree.root.Tree.children
  in
  match Update.apply ft (Update.Delete anna_client.Tree.id) with
  | Error (Update.Would_detach_fragments _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "spanning deletes must be rejected"

let test_missing_node () =
  let _, ft = setup () in
  match Update.apply ft (Update.Set_text (424242, "x")) with
  | Error (Update.Node_not_found _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "unknown node must be reported"

let test_locate () =
  let c, ft = setup () in
  match Update.locate ft c.H.Data.cibc_name with
  | Some (fid, n) ->
      Alcotest.(check string) "found the right node" "CIBC" (Tree.text_of n);
      Alcotest.(check bool) "in a non-root fragment" true (fid > 0)
  | None -> Alcotest.fail "locate failed"

(* After a batch of updates, distributed evaluation still matches the
   oracle on the reassembled tree. *)
let test_queries_after_updates () =
  let c, ft = setup () in
  let b = Tree.builder_from 50_000 in
  let extra =
    Tree.elem b "stock"
      [ Tree.leaf b "code" "GOOG"; Tree.leaf b "buy" "401"; Tree.leaf b "qt" "7" ]
  in
  (* Insert a GOOG position into Bache's NASDAQ market (fragment F4). *)
  let nasdaq_market_id = c.H.Data.cut_f4 in
  (match Update.apply ft (Update.Insert (nasdaq_market_id, extra)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Update.error_to_string e));
  (match Update.apply ft (Update.Set_text (c.H.Data.bache_name, "Bache & Co")) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Update.error_to_string e));
  let cl = Pax_dist.Cluster.one_site_per_fragment ft in
  let q = Query.of_string "//broker[//stock[code/text() = \"GOOG\"][buy > 400]]/name" in
  let r = Pax_core.Pax2.run cl q in
  let oracle = Semantics.eval_ids q.Query.ast (Fragment.reassemble ft) in
  Alcotest.(check (list int)) "PaX2 after updates = oracle on updated tree"
    oracle r.Pax_core.Run_result.answer_ids;
  Alcotest.(check int) "exactly the updated broker" 1 (List.length oracle)

let () =
  Alcotest.run "update"
    [
      ( "operations",
        [
          Alcotest.test_case "set_text" `Quick test_set_text;
          Alcotest.test_case "insert" `Quick test_insert;
          Alcotest.test_case "insert id clash" `Quick test_insert_duplicate_ids_rejected;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "delete fragment root" `Quick
            test_delete_fragment_root_rejected;
          Alcotest.test_case "delete spanning subtree" `Quick
            test_delete_spanning_rejected;
          Alcotest.test_case "missing node" `Quick test_missing_node;
          Alcotest.test_case "locate" `Quick test_locate;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "queries after updates" `Quick test_queries_after_updates ] );
    ]

(* XML tree model, parser and printer. *)

module Tree = Pax_xml.Tree
module Parser = Pax_xml.Parser
module Printer = Pax_xml.Printer

let parse s = (Parser.parse_string s).Tree.root

let test_basic_parse () =
  let root = parse "<a><b>hello</b><c x=\"1\" y=\"two\"/></a>" in
  Alcotest.(check string) "root tag" "a" root.Tree.tag;
  Alcotest.(check int) "two children" 2 (List.length root.Tree.children);
  match root.Tree.children with
  | [ b; c ] ->
      Alcotest.(check string) "text" "hello" (Tree.text_of b);
      Alcotest.(check (option string)) "attr x" (Some "1") (Tree.attr c "x");
      Alcotest.(check (option string)) "attr y" (Some "two") (Tree.attr c "y")
  | _ -> Alcotest.fail "expected [b; c]"

let test_prolog_comments () =
  let root =
    parse
      "<?xml version=\"1.0\"?><!-- top --><!DOCTYPE a [<!ELEMENT a ANY>]>\n\
       <a><!-- inner -->text<![CDATA[ & raw <stuff> ]]></a>"
  in
  Alcotest.(check string) "tag" "a" root.Tree.tag;
  Alcotest.(check string) "cdata kept raw" "text & raw <stuff> "
    (Tree.text_of root)

let test_entities () =
  let root = parse "<a>x &lt; y &amp;&amp; y &gt; z &quot;q&quot; &#65;</a>" in
  Alcotest.(check string) "decoded" "x < y && y > z \"q\" A" (Tree.text_of root)

let test_errors () =
  let fails s =
    match Parser.parse_string s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  fails "<a><b></a>";
  fails "<a>";
  fails "no xml";
  fails "<a></a><b></b>";
  fails "<a x=1></a>"

let test_roundtrip () =
  let source =
    "<inventory date=\"2007-06-12\"><item code=\"A1\">widget</item><empty/>\
     <nested><deep><deeper>x</deeper></deep></nested></inventory>"
  in
  let once = parse source in
  let again = parse (Printer.to_string once) in
  Alcotest.(check bool) "parse . print . parse is stable" true
    (Tree.equal_structure once again);
  let indented = parse (Printer.to_string ~indent:true once) in
  Alcotest.(check bool) "indented print parses to the same tree" true
    (Tree.equal_structure once indented)

let test_escaping () =
  Alcotest.(check string) "text escape" "a&amp;b&lt;c&gt;d"
    (Printer.escape_text "a&b<c>d");
  Alcotest.(check string) "attr escape" "&quot;x&apos;"
    (Printer.escape_attr "\"x'")

let test_measures () =
  let b = Tree.builder () in
  let t =
    Tree.elem b "r" [ Tree.leaf b "x" "1"; Tree.elem b "y" [ Tree.leaf b "z" "2" ] ]
  in
  Alcotest.(check int) "size" 4 (Tree.size t);
  Alcotest.(check int) "depth" 3 (Tree.depth t);
  Alcotest.(check bool) "bytes positive" true (Tree.byte_size t > 0);
  let doc = Tree.doc_of_root t in
  Alcotest.(check int) "doc node count" 4 doc.Tree.node_count

let test_traversal () =
  let root = parse "<a><b><c/></b><d/></a>" in
  let pre = ref [] in
  Tree.iter (fun n -> pre := n.Tree.tag :: !pre) root;
  Alcotest.(check (list string)) "pre-order" [ "a"; "b"; "c"; "d" ]
    (List.rev !pre);
  let post = ref [] in
  Tree.iter_post (fun n -> post := n.Tree.tag :: !post) root;
  Alcotest.(check (list string)) "post-order" [ "c"; "b"; "d"; "a" ]
    (List.rev !post);
  let leaves = Tree.select (fun n -> n.Tree.children = []) root in
  Alcotest.(check int) "two leaves" 2 (List.length leaves)

let test_find_and_copy () =
  let root = parse "<a><b/><c><d/></c></a>" in
  (match Tree.find_by_id root 3 with
  | Some n -> Alcotest.(check bool) "found some node" true (n.Tree.id = 3)
  | None -> Alcotest.fail "id 3 should exist");
  Alcotest.(check (option Alcotest.reject)) "missing id" None
    (Tree.find_by_id root 999 |> Option.map ignore);
  let copy = Tree.copy root in
  Alcotest.(check bool) "copy equal" true (Tree.equal_structure root copy);
  copy.Tree.children <- [];
  Alcotest.(check int) "original untouched" 2 (List.length root.Tree.children)

let test_virtual_nodes () =
  let b = Tree.builder () in
  let v = Tree.virtual_node b 7 in
  Alcotest.(check bool) "is virtual" true (Tree.is_virtual v);
  Alcotest.(check (option int)) "fragment id" (Some 7) (Tree.virtual_fragment v);
  let t = Tree.elem b "r" [ v ] in
  let printed = Printer.to_string t in
  Alcotest.(check bool) "serializes as a PI" true
    (Astring.String.is_infix ~affix:"<?fragment id=\"7\"?>" printed)

let test_float_of () =
  let b = Tree.builder () in
  Alcotest.(check (option (float 0.001))) "parses" (Some 3.5)
    (Tree.float_of (Tree.leaf b "x" "3.5"));
  Alcotest.(check (option (float 0.001))) "trims" (Some 42.)
    (Tree.float_of (Tree.leaf b "x" " 42 "));
  Alcotest.(check (option (float 0.001))) "non-numeric" None
    (Tree.float_of (Tree.leaf b "x" "abc"))

let () =
  Alcotest.run "xml"
    [
      ( "parser",
        [
          Alcotest.test_case "basic" `Quick test_basic_parse;
          Alcotest.test_case "prolog, comments, CDATA" `Quick test_prolog_comments;
          Alcotest.test_case "entities" `Quick test_entities;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "printer",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "escaping" `Quick test_escaping;
        ] );
      ( "tree",
        [
          Alcotest.test_case "measures" `Quick test_measures;
          Alcotest.test_case "traversal" `Quick test_traversal;
          Alcotest.test_case "find and copy" `Quick test_find_and_copy;
          Alcotest.test_case "virtual nodes" `Quick test_virtual_nodes;
          Alcotest.test_case "float_of" `Quick test_float_of;
        ] );
    ]

(* The domain-pool execution path (docs/PARALLELISM.md): a [domains:n]
   run must be observationally identical to the [domains:1] run — same
   answers, same deterministic report fields, same logical trace, byte
   for byte — with only wall-clock allowed to differ.

   Three layers:
   - unit tests of the [run_round] result-order contract (input [sites]
     order, duplicates removed) and of [Pool] itself;
   - a qcheck differential: random scenarios evaluated by every engine
     at [domains:4] vs [domains:1];
   - a stress test hammering the pool with many rounds of deliberately
     uneven per-site workloads (set PAX_STRESS to raise the iteration
     count; `dune build @slow` does). *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Pool = Pax_dist.Pool
module Trace = Pax_dist.Trace
module Run_result = Pax_core.Run_result
module H = Test_helpers
module G = QCheck.Gen

let stress_iters =
  match Sys.getenv_opt "PAX_STRESS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 30)
  | None -> 30

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                    *)
(* ------------------------------------------------------------------ *)

let test_pool_map () =
  let pool = Pool.create ~domains:4 in
  let xs = Array.init 100 Fun.id in
  let ys = Pool.map pool (fun x -> x * x) xs in
  Alcotest.(check (array int)) "squares in order"
    (Array.map (fun x -> x * x) xs)
    ys;
  (* Batches are reusable back to back. *)
  let zs = Pool.map pool string_of_int xs in
  Alcotest.(check string) "second batch" "17" zs.(17);
  Pool.shutdown pool

let test_pool_first_error () =
  let pool = Pool.create ~domains:4 in
  let xs = Array.init 64 Fun.id in
  (* Several tasks fail; the re-raised exception must be the smallest
     failing index no matter which domain got there first. *)
  (match
     Pool.map pool
       (fun x -> if x mod 10 = 3 then failwith (string_of_int x) else x)
       xs
   with
  | _ -> Alcotest.fail "expected a failure"
  | exception Failure msg ->
      Alcotest.(check string) "smallest failing index" "3" msg);
  Pool.shutdown pool

let test_pool_degree_one_inline () =
  let pool = Pool.create ~domains:1 in
  let seen = ref [] in
  ignore (Pool.map pool (fun x -> seen := x :: !seen) [| 1; 2; 3 |]);
  Alcotest.(check (list int)) "inline, in order" [ 3; 2; 1 ] !seen;
  Pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* run_round result-order contract                                    *)
(* ------------------------------------------------------------------ *)

(* [run_round] does not care whether a site holds fragments, so a
   one-fragment tree on [n_sites] sites is enough to drive it. *)
let bare_cluster ~domains ~n_sites =
  let ft = Fragment.fragmentize (H.Data.mini_sites ()) ~cuts:[] in
  Cluster.create ~domains ~ftree:ft ~n_sites ~assign:(fun _ -> 0) ()

let test_round_order domains () =
  let cl = bare_cluster ~domains ~n_sites:4 in
  (* Scrambled order with duplicates: the contract is dedup-preserving
     input order, for sequential and parallel paths alike. *)
  let sites = [ 3; 1; 3; 0; 2; 1; 0 ] in
  let results = Cluster.run_round cl ~label:"order" ~sites (fun s -> s * 10) in
  Alcotest.(check (list (pair int int)))
    (Printf.sprintf "input order, deduped (domains:%d)" domains)
    [ (3, 30); (1, 10); (0, 0); (2, 20) ]
    results

(* ------------------------------------------------------------------ *)
(* Differential: domains:4 vs domains:1                               *)
(* ------------------------------------------------------------------ *)

let engines =
  [
    ("PaX2-NA", fun cl q -> Pax_core.Pax2.run cl q);
    ("PaX2-XA", fun cl q -> Pax_core.Pax2.run ~annotations:true cl q);
    ("PaX3-NA", fun cl q -> Pax_core.Pax3.run cl q);
    ("PaX3-XA", fun cl q -> Pax_core.Pax3.run ~annotations:true cl q);
    ("Naive", fun cl q -> Pax_core.Naive.run cl q);
  ]

(* A cluster with the same fragment tree and placement at a different
   degree. *)
let reclustered ?(domains = 1) cl =
  Cluster.create ~domains ~ftree:(Cluster.ftree cl)
    ~n_sites:(Cluster.n_sites cl) ~assign:(Cluster.site_of cl) ()

let check_same_trace name t1 t4 =
  let e1 = Trace.events t1 and e4 = Trace.events t4 in
  if e1 <> e4 then
    QCheck.Test.fail_reportf "%s: traces differ\n-- domains:1 --\n%s\n-- domains:4 --\n%s"
      name
      (Format.asprintf "%a" Trace.pp t1)
      (Format.asprintf "%a" Trace.pp t4)

(* Every deterministic report field; only the wall-clock ones may
   differ between degrees. *)
let check_same_report name (r1 : Cluster.report) (r4 : Cluster.report) =
  let chk what a b =
    if a <> b then
      QCheck.Test.fail_reportf "%s: %s differs: domains:1 %s, domains:4 %s"
        name what a b
  in
  let istr = string_of_int in
  chk "parallel_ops" (istr r1.parallel_ops) (istr r4.parallel_ops);
  chk "total_ops" (istr r1.total_ops) (istr r4.total_ops);
  chk "visits"
    (String.concat ";" (List.map istr (Array.to_list r1.visits)))
    (String.concat ";" (List.map istr (Array.to_list r4.visits)));
  chk "max_visits" (istr r1.max_visits) (istr r4.max_visits);
  chk "retries" (istr r1.retries) (istr r4.retries);
  chk "rounds" (String.concat "->" r1.rounds) (String.concat "->" r4.rounds);
  chk "control_bytes" (istr r1.control_bytes) (istr r4.control_bytes);
  chk "answer_bytes" (istr r1.answer_bytes) (istr r4.answer_bytes);
  chk "tree_bytes" (istr r1.tree_bytes) (istr r4.tree_bytes);
  chk "n_messages" (istr r1.n_messages) (istr r4.n_messages)

let differential (s : H.Gen.scenario) =
  let cl1 = reclustered ~domains:1 s.H.Gen.s_cluster in
  let cl4 = reclustered ~domains:4 s.H.Gen.s_cluster in
  let q = Query.of_ast s.H.Gen.s_query in
  List.for_all
    (fun (name, run) ->
      let r1 : Run_result.t = run cl1 q in
      let r4 : Run_result.t = run cl4 q in
      if r1.Run_result.answer_ids <> r4.Run_result.answer_ids then
        QCheck.Test.fail_reportf "%s: answers differ: [%s] vs [%s]" name
          (String.concat ";" (List.map string_of_int r1.Run_result.answer_ids))
          (String.concat ";" (List.map string_of_int r4.Run_result.answer_ids))
      else begin
        check_same_report name r1.Run_result.report r4.Run_result.report;
        check_same_trace name (Run_result.trace_exn r1)
          (Run_result.trace_exn r4);
        true
      end)
    engines

let qcheck_count n =
  match Sys.getenv_opt "PAX_QCHECK_COUNT" with
  | Some s -> ( try int_of_string s with _ -> n)
  | None -> n

let equivalence_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"domains:4 = domains:1 (answers, reports, traces)"
       ~count:(qcheck_count 75) H.Gen.arbitrary_scenario differential)

(* ------------------------------------------------------------------ *)
(* Stress: uneven workloads over many rounds                          *)
(* ------------------------------------------------------------------ *)

(* Site [s] of round [r] burns an amount of CPU that varies wildly with
   (s, r) and returns a checksum; the parallel run must deliver exactly
   the sequential results, order included, every round.  This shakes the
   pool's claiming/merge logic far harder than the engines do: many
   back-to-back barriers, skewed task sizes, and degrees above the
   physical core count. *)
let busywork ~site ~round =
  let n = 1 + ((site * 7919 + round * 104729) mod 4000) in
  let acc = ref 0 in
  for i = 1 to n do
    acc := (!acc * 31) + ((i * site) lxor round)
  done;
  !acc

let test_stress () =
  let n_sites = 8 in
  let mk domains = bare_cluster ~domains ~n_sites in
  let all_sites = List.init n_sites Fun.id in
  let run (cl : Cluster.t) =
    List.init stress_iters (fun round ->
        (* Vary the site subset and its order from round to round. *)
        let sites =
          List.filter (fun s -> (s + round) mod 3 <> 0 || s = round mod n_sites)
            (if round mod 2 = 0 then all_sites else List.rev all_sites)
        in
        Cluster.run_round cl ~label:(Printf.sprintf "r%d" round) ~sites
          (fun site -> busywork ~site ~round))
  in
  let seq = run (mk 1) in
  List.iter
    (fun domains ->
      let par = run (mk domains) in
      Alcotest.(check bool)
        (Printf.sprintf "stress domains:%d = sequential" domains)
        true (par = seq))
    [ 2; 4; 8; 13 ]

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map keeps input order" `Quick test_pool_map;
          Alcotest.test_case "first-index error wins" `Quick
            test_pool_first_error;
          Alcotest.test_case "degree 1 runs inline" `Quick
            test_pool_degree_one_inline;
        ] );
      ( "round order",
        [
          Alcotest.test_case "sequential: input order, deduped" `Quick
            (test_round_order 1);
          Alcotest.test_case "parallel: input order, deduped" `Quick
            (test_round_order 4);
        ] );
      ("equivalence", [ equivalence_test ]);
      ( "stress",
        [ Alcotest.test_case "uneven workloads" `Quick test_stress ] );
    ]

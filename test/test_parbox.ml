(* ParBoX: Boolean queries, one visit per site, O(|Q| |FT|) traffic. *)

module Tree = Pax_xml.Tree
module Semantics = Pax_xpath.Semantics
module Parse = Pax_xpath.Parse
module Cluster = Pax_dist.Cluster
module H = Test_helpers

let c = H.Data.clientele ()

let eval_both qual_text =
  let cl = H.Data.clientele_cluster c in
  let answer, report = Pax_core.Parbox.eval_string cl qual_text in
  let expected = Semantics.holds (Parse.qual qual_text) c.doc.Tree.root in
  Alcotest.(check bool) (qual_text ^ " truth") expected answer;
  report

let test_truth_values () =
  List.iter
    (fun s -> ignore (eval_both s))
    [
      "//stock/code/text() = \"GOOG\"";
      "//stock/code/text() = \"MSFT\"";
      "client/country/text() = \"US\"";
      "client[country/text() = \"Canada\"]//stock";
      "not(//stock[buy > 1000])";
      "//stock[buy > 380] and //market/name/text() = \"TSE\"";
      "//broker or //nothing";
      "client/broker/market/stock/qt";
    ]

let test_one_visit () =
  let report = eval_both "//stock/code/text() = \"GOOG\"" in
  Alcotest.(check int) "one visit per site" 1 report.Cluster.max_visits;
  Alcotest.(check int) "one round" 1 (List.length report.Cluster.rounds)

let test_no_tree_data () =
  let report = eval_both "//stock[qt >= 40]" in
  Alcotest.(check int) "no tree data at all" 0 report.Cluster.tree_bytes;
  Alcotest.(check int) "no answer elements either" 0 report.Cluster.answer_bytes;
  Alcotest.(check bool) "control traffic bounded" true
    (report.Cluster.control_bytes > 0)

(* Communication is independent of document size: grow the document and
   the control bytes stay put. *)
let test_traffic_independent_of_tree () =
  let report_small = eval_both "//stock/code/text() = \"GOOG\"" in
  let b = Tree.builder () in
  let big_client i =
    Tree.elem b "client"
      [ Tree.leaf b "name" (Printf.sprintf "c%d" i);
        Tree.leaf b "country" "US";
        Tree.elem b "broker"
          [ Tree.leaf b "name" "B";
            Tree.elem b "market"
              [ Tree.leaf b "name" "M";
                Tree.elem b "stock"
                  [ Tree.leaf b "code" "AAA"; Tree.leaf b "buy" "5"; Tree.leaf b "qt" "1" ] ] ] ]
  in
  let root = Tree.elem b "clientele" (List.init 60 big_client) in
  let doc = Tree.doc_of_root root in
  let cuts = Pax_frag.Fragment.cuts_by_tag doc ~tag:"broker" in
  (* Keep |FT| comparable: only 4 cuts. *)
  let cuts = List.filteri (fun i _ -> i < 4) cuts in
  let ft = Pax_frag.Fragment.fragmentize doc ~cuts in
  let cl = Cluster.create ~ftree:ft ~n_sites:4 ~assign:(fun fid -> fid mod 4) () in
  let _, report_big = Pax_core.Parbox.eval_string cl "//stock/code/text() = \"GOOG\"" in
  Alcotest.(check bool) "traffic same order despite 10x tree" true
    (report_big.Cluster.control_bytes < 4 * report_small.Cluster.control_bytes)

let () =
  Alcotest.run "parbox"
    [
      ( "boolean-queries",
        [
          Alcotest.test_case "truth values" `Quick test_truth_values;
          Alcotest.test_case "single visit" `Quick test_one_visit;
          Alcotest.test_case "no data shipping" `Quick test_no_tree_data;
          Alcotest.test_case "traffic vs tree size" `Quick test_traffic_independent_of_tree;
        ] );
    ]

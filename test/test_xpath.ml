(* XPath parsing and the paper's normalization rules. *)

module Ast = Pax_xpath.Ast
module Parse = Pax_xpath.Parse
module Normal = Pax_xpath.Normal
module Compile = Pax_xpath.Compile
module Query = Pax_xpath.Query

let q = Parse.query
let norm s = Normal.to_string (Normal.normalize (q s))
let check = Alcotest.(check string)

let test_paths () =
  check "simple path" "a/b/c" (Ast.to_string (q "a/b/c"));
  check "absolute" "/a/b" (Ast.to_string (q "/a/b"));
  check "leading dslash" "//a" (Ast.to_string (q "//a"));
  check "wildcard and dot kept" "*/b" (Ast.to_string (q "*/./b"));
  check "inner dslash" "a//b" (Ast.to_string (q "a//b"))

let test_qualifiers () =
  check "path qualifier" "a[b/c]" (Ast.to_string (q "a[b/c]"));
  check "text test" "a[b/text() = \"x\"]" (Ast.to_string (q "a[b/text()='x']"));
  check "text sugar" "a[b/text() = \"x\"]" (Ast.to_string (q "a[b = 'x']"));
  check "val test" "a[b/val() > 7]" (Ast.to_string (q "a[b/val() > 7]"));
  check "val sugar" "a[b/val() > 7]" (Ast.to_string (q "a[b > 7]"));
  check "conjunction" "a[(b and c)]" (Ast.to_string (q "a[b and c]"));
  check "disjunction" "a[(b or c)]" (Ast.to_string (q "a[b or c]"));
  check "negation" "a[not(b)]" (Ast.to_string (q "a[not(b)]"));
  check "bang negation" "a[not(b)]" (Ast.to_string (q "a[!b]"));
  check "symbols" "a[(b and c)]" (Ast.to_string (q "a[b && c]"));
  check "neq string" "a[not(b/text() = \"x\")]" (Ast.to_string (q "a[b != 'x']"));
  check "multiple qualifiers" "a[b][c]" (Ast.to_string (q "a[b][c]"))

let test_precedence () =
  (* and binds tighter than or, as in XPath. *)
  check "and over or (left)" "a[((b and c) or d)]"
    (Ast.to_string (q "a[b and c or d]"));
  check "and over or (right)" "a[(b or (c and d))]"
    (Ast.to_string (q "a[b or c and d]"));
  check "parens override" "a[((b or c) and d)]"
    (Ast.to_string (q "a[(b or c) and d]"));
  check "not binds tightest" "a[(not(b) and c)]"
    (Ast.to_string (q "a[!b and c]"))

let test_attributes () =
  check "existence" "a[@id]" (Ast.to_string (q "a[@id]"));
  check "equality" "a[@id = \"x\"]" (Ast.to_string (q "a[@id = 'x']"));
  check "on a path" "a[b/@cat = \"y\"]" (Ast.to_string (q "a[b/@cat = 'y']"));
  check "negated equality" "a[not(@id = \"x\")]" (Ast.to_string (q "a[@id != 'x']"));
  check "normalizes into a condition step" "a/e[e[@id]]" (norm "a[@id]");
  (match Parse.query "a[@id > 3]" with
  | exception Parse.Syntax_error _ -> ()
  | _ -> Alcotest.fail "attributes only compare for equality")

let test_paper_queries () =
  (* All four experiment queries of Fig. 7 must parse. *)
  List.iter
    (fun s -> ignore (q s))
    [
      "/sites/site/people/person";
      "/sites/site/open_auctions//annotation";
      "/sites/site/people/person[profile/age > 20 and address/country = \"US\"]/creditcard";
      "/sites//people/person[/profile/age > 20 and /address/country = \"US\"]/creditcard";
      "//broker[//stock/code/text() = \"goog\" and not(//stock/code/text() = \"yhoo\")]/name";
      "client[country/text() = \"us\"]/broker[market/name/text() = \"nasdaq\"]/name";
    ]

let test_errors () =
  let fails s =
    match Parse.query s with
    | exception Parse.Syntax_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  fails "";
  fails "a[";
  fails "a]";
  fails "a[b = ]";
  fails "a[text() > 'x']";
  fails "a//";
  fails "a b";
  fails "a[not b]"

let test_normal_form () =
  check "plain path" "a/b" (norm "a/b");
  check "dslash becomes step" "a//b" (norm "a//b");
  check "qualifier becomes epsilon step" "a/e[b]" (norm "a[b]");
  check "text pushed into trailing step" "a/e[b/e[text() = \"x\"]]"
    (norm "a[b/text()='x']");
  check "consecutive qualifiers merge" "a/e[(b and c)]" (norm "a[b][c]");
  check "dot disappears" "a/b" (norm "a/./b");
  check "double dslash collapses" "a//b" (norm "a/.//./b");
  check "example 2.1"
    "client/e[country/e[text() = \"us\"]]/broker/e[market/name/e[text() = \"nasdaq\"]]/name"
    (norm "client[country/text()='us']/broker[market/name/text()='nasdaq']/name")

let test_selection_path () =
  let n =
    Normal.normalize
      (q "client[country/text()='us']/broker[market/name/text()='nasdaq']/name")
  in
  let sel = Normal.selection_path n in
  Alcotest.(check int) "selection path client/broker/name" 3 (List.length sel);
  Alcotest.(check bool) "has qualifiers" false (Normal.has_no_qualifiers n);
  let n2 = Normal.normalize (q "a/b//c") in
  Alcotest.(check bool) "no qualifiers" true (Normal.has_no_qualifiers n2)

let test_compile_layout () =
  let c = (Query.of_string "a[b/c and d]//e[f = 'x']").Query.compiled in
  Alcotest.(check bool) "qualifier entries linear in |Q|" true
    (c.Compile.n_qual > 0 && c.Compile.n_qual < 64);
  Alcotest.(check int) "selection vector = items + 1" c.Compile.n_sel
    (Array.length c.Compile.sel + 1);
  (* Nested paths come before the paths that reference them. *)
  Array.iteri
    (fun pi (p : Compile.cpath) ->
      Array.iter
        (function
          | Compile.Filter q ->
              let rec refs = function
                | Compile.Sat pj -> Alcotest.(check bool) "nested-first" true (pj < pi)
                | Compile.Text_eq _ | Compile.Val_cmp _ | Compile.Attr_test _ -> ()
                | Compile.Qnot r -> refs r
                | Compile.Qand (a, b) | Compile.Qor (a, b) -> refs a; refs b
              in
              refs q
          | Compile.Move _ | Compile.Dos_item -> ())
        p.Compile.items)
    c.Compile.paths

let test_query_handle () =
  let qq = Query.of_string "/sites/site/open_auctions//annotation" in
  Alcotest.(check bool) "absolute" true qq.Query.ast.Ast.absolute;
  Alcotest.(check bool) "has dos" true (Query.has_dos qq);
  Alcotest.(check bool) "no qualifiers" false (Query.has_qualifiers qq);
  let qq2 = Query.of_string "a[b]/c" in
  Alcotest.(check bool) "has qualifiers" true (Query.has_qualifiers qq2);
  Alcotest.(check bool) "no dos" false (Query.has_dos qq2);
  Alcotest.(check bool) "size positive" true (Query.size qq2 > 0)

let test_parse_print_roundtrip () =
  let stable s =
    let once = q s in
    let again = q (Ast.to_string once) in
    Alcotest.(check bool) (s ^ " roundtrips") true (Ast.equal once again)
  in
  List.iter stable
    [
      "a/b/c";
      "//a[b//c]/d";
      "/a/*[x = 'y']//b";
      "a[not(b) and (c or d/text() = 'x')]";
      "a[b > 1][c <= 2.5]";
      ".//x";
    ]

let () =
  Alcotest.run "xpath"
    [
      ( "parser",
        [
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "qualifiers" `Quick test_qualifiers;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "paper queries" `Quick test_paper_queries;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "roundtrip" `Quick test_parse_print_roundtrip;
        ] );
      ( "normalization",
        [
          Alcotest.test_case "normal form" `Quick test_normal_form;
          Alcotest.test_case "selection path" `Quick test_selection_path;
        ] );
      ( "compile",
        [
          Alcotest.test_case "layout" `Quick test_compile_layout;
          Alcotest.test_case "query handle" `Quick test_query_handle;
        ] );
    ]

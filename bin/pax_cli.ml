(* pax — command-line front end.

   Subcommands:
     pax gen       generate an XMark-style document
     pax query     evaluate an XPath query over a (fragmented) document
     pax inspect   document statistics
     pax explain   parse/normalize/compile a query and show the pieces

   Examples:
     pax gen -n 50000 -s 10 -o sites.xml
     pax query sites.xml '/sites/site/people/person' --algo pax2 --annotations \
         --fragment-tag site --stats
     pax serve store/ --site 0 --listen unix:/tmp/s0.sock &
     pax query store/ '//person' --connect unix:/tmp/s0.sock,unix:/tmp/s1.sock
     pax explain 'a[b/text() = "x"]//c' *)

module Tree = Pax_xml.Tree
module Parser = Pax_xml.Parser
module Printer = Pax_xml.Printer
module Query = Pax_xpath.Query
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Xmark = Pax_xmark.Xmark
open Cmdliner

(* ------------------------------------------------------------------ *)
(* gen                                                                *)
(* ------------------------------------------------------------------ *)

let gen_cmd =
  let run nodes sites seed output =
    let doc = Xmark.doc ~seed ~total_nodes:nodes ~n_sites:sites in
    let xml = Printer.to_string ~indent:true doc.Tree.root in
    (match output with
    | Some path ->
        let oc = open_out path in
        output_string oc xml;
        close_out oc;
        Printf.printf "wrote %s: %d nodes, %d bytes\n" path doc.Tree.node_count
          (String.length xml)
    | None -> print_string xml);
    0
  in
  let nodes =
    Arg.(value & opt int 10_000 & info [ "n"; "nodes" ] ~doc:"Total node budget.")
  in
  let sites =
    Arg.(value & opt int 4 & info [ "s"; "sites" ] ~doc:"Number of XMark site subtrees.")
  in
  let seed = Arg.(value & opt int 2007 & info [ "seed" ] ~doc:"PRNG seed.") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate an XMark-style document.")
    Term.(const run $ nodes $ sites $ seed $ output)

(* ------------------------------------------------------------------ *)
(* query                                                              *)
(* ------------------------------------------------------------------ *)

type algo = Pax2 | Pax3 | Naive | Centralized | Stream

let algo_conv =
  Arg.enum
    [ ("pax2", Pax2); ("pax3", Pax3); ("naive", Naive);
      ("centralized", Centralized); ("stream", Stream) ]

type placement = Per_fragment | Round_robin | Balanced

let placement_conv =
  Arg.enum
    [ ("per-fragment", Per_fragment); ("round-robin", Round_robin);
      ("balanced", Balanced) ]

let make_cuts doc ~fragment_tag ~fragment_budget =
  match (fragment_tag, fragment_budget) with
  | Some tag, _ -> Fragment.cuts_by_tag doc ~tag
  | None, Some budget -> Fragment.cuts_by_size doc ~budget
  | None, None -> []

(* FILE may be a plain document or a fragment-store directory. *)
let load_ftree file ~fragment_tag ~fragment_budget =
  if Pax_frag.Store.is_store file then Pax_frag.Store.load ~dir:file
  else
    let doc = Parser.parse_file file in
    Fragment.fragmentize doc ~cuts:(make_cuts doc ~fragment_tag ~fragment_budget)

let build_cluster ft ~n_sites ~placement =
  let n = Fragment.n_fragments ft in
  match (n_sites, placement) with
  | None, _ -> Cluster.one_site_per_fragment ft
  | Some k, placement -> (
      let k = max 1 (min k n) in
      match placement with
      | Per_fragment | Round_robin ->
          Pax_dist.Placement.cluster_round_robin ft ~n_sites:k
      | Balanced -> Pax_dist.Placement.cluster_balanced ft ~n_sites:k)

let parse_connect spec =
  Array.of_list
    (List.map
       (fun s ->
         match Pax_net.Sockio.addr_of_string (String.trim s) with
         | Ok a -> a
         | Error e -> invalid_arg e)
       (String.split_on_char ',' spec))

(* [--report-out]: one compact JSON document per run. *)
let write_json path doc =
  let oc = open_out path in
  output_string oc (Pax_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

let metrics_json pairs =
  Pax_obs.Json.Obj (List.map (fun (k, v) -> (k, Pax_obs.Json.Num v)) pairs)

let query_cmd =
  let run file query_text algo annotations fragment_tag fragment_budget n_sites
      placement simplify stats quiet fault_seed fault_drop fault_crash retries
      show_trace domains connect trace_out report_out =
    match
      let ft = load_ftree file ~fragment_tag ~fragment_budget in
      let q =
        if simplify then Pax_xpath.Simplify.query query_text
        else Query.of_string query_text
      in
      let connect_addrs = Option.map parse_connect connect in
      (* Telemetry is opt-in: with neither --stats nor --trace-out the
         noop sink is threaded through and the run is bit-identical to
         an uninstrumented one. *)
      let sink =
        if stats || trace_out <> None || report_out <> None then
          Pax_obs.Sink.create ()
        else Pax_obs.Sink.noop
      in
      let result =
        match algo with
        | Centralized ->
            let r = Pax_core.Centralized.run q (Fragment.reassemble ft) in
            `Centralized r
        | Stream ->
            let xml = Printer.to_string (Fragment.reassemble ft) in
            `Stream (Pax_core.Stream_eval.over_string q xml)
        | (Pax2 | Pax3 | Naive) as a ->
            (* With --connect, the default site count is the number of
               listed servers, not one per fragment. *)
            let n_sites =
              match (connect_addrs, n_sites) with
              | Some addrs, None -> Some (Array.length addrs)
              | _ -> n_sites
            in
            let cluster = build_cluster ft ~n_sites ~placement in
            Cluster.set_domains cluster (max 1 domains);
            Cluster.set_sink cluster sink;
            (match fault_seed with
            | Some seed ->
                Cluster.set_fault cluster
                  (Pax_dist.Fault.seeded ~drop:fault_drop ~dup:(fault_drop /. 2.)
                     ~lose:(fault_drop /. 2.) ~crash:fault_crash ~seed ())
            | None -> ());
            (match retries with
            | Some n ->
                Cluster.set_retry cluster
                  { Pax_dist.Retry.default with max_attempts = max 1 n }
            | None -> ());
            let client =
              match connect_addrs with
              | None -> None
              | Some addrs ->
                  if fault_seed <> None then
                    invalid_arg
                      "--fault-seed and --connect are mutually exclusive \
                       (fault injection applies to the in-process transport)";
                  if Array.length addrs <> Cluster.n_sites cluster then
                    invalid_arg
                      (Printf.sprintf
                         "--connect lists %d address(es) but the cluster has \
                          %d sites"
                         (Array.length addrs) (Cluster.n_sites cluster));
                  let c = Pax_net.Client.create ~addrs () in
                  Pax_net.Client.set_sink c sink;
                  Cluster.set_transport cluster
                    (Some (Pax_net.Client.transport c));
                  Some c
            in
            let engine =
              match a with
              | Pax2 -> "pax2"
              | Pax3 -> "pax3"
              | Naive | Centralized | Stream -> "naive"
            in
            let r, server_stats, server_spans =
              Fun.protect
                ~finally:(fun () -> Option.iter Pax_net.Client.close client)
                (fun () ->
                  let r =
                    match a with
                    | Pax2 -> Pax_core.Pax2.run ~annotations cluster q
                    | Pax3 -> Pax_core.Pax3.run ~annotations cluster q
                    | Naive | Centralized | Stream ->
                        Pax_core.Naive.run cluster q
                  in
                  (* Pull each site server's counters while the
                     connections are still open; the raw-IO fetch does
                     not disturb the counters it reads. *)
                  let server_stats =
                    match client with
                    | Some c when stats || report_out <> None ->
                        List.init (Cluster.n_sites cluster) (fun site ->
                            match Pax_net.Client.fetch_stats c site with
                            | pairs -> (site, pairs)
                            | exception _ -> (site, []))
                    | _ -> []
                  in
                  (* Harvest each site's span ring together with its
                     estimated clock offset, for the merged multi-
                     process Perfetto export (docs/OBSERVABILITY.md). *)
                  let server_spans =
                    match client with
                    | Some c when trace_out <> None ->
                        List.init (Cluster.n_sites cluster) (fun site ->
                            match Pax_net.Client.fetch_spans c site with
                            | offset, spans -> (site, offset, spans)
                            | exception _ -> (site, 0., []))
                    | _ -> []
                  in
                  (r, server_stats, server_spans))
            in
            `Distributed (r, engine, server_stats, server_spans)
      in
      (match result with
      | `Stream r ->
          Printf.printf "%d answer(s) at pre-order indices: %s\n"
            (List.length r.Pax_core.Stream_eval.matches)
            (String.concat ", "
               (List.map string_of_int r.Pax_core.Stream_eval.matches));
          if stats then
            Printf.printf
              "elements: %d | max depth: %d | peak pending: %d\n"
              r.Pax_core.Stream_eval.elements r.Pax_core.Stream_eval.max_depth
              r.Pax_core.Stream_eval.peak_pending;
          Option.iter
            (fun path ->
              let module J = Pax_obs.Json in
              write_json path
                (J.Obj
                   [
                     ("query", J.Str query_text);
                     ("engine", J.Str "stream");
                     ( "answers",
                       J.int (List.length r.Pax_core.Stream_eval.matches) );
                   ]))
            report_out
      | `Centralized r ->
          Printf.printf "%d answer(s)\n" (List.length r.Pax_core.Centralized.answers);
          if not quiet then
            List.iter
              (fun n -> print_string (Printer.to_string n))
              r.Pax_core.Centralized.answers;
          Option.iter
            (fun path ->
              let module J = Pax_obs.Json in
              write_json path
                (J.Obj
                   [
                     ("query", J.Str query_text);
                     ("engine", J.Str "centralized");
                     ( "answers",
                       J.int (List.length r.Pax_core.Centralized.answers) );
                   ]))
            report_out
      | `Distributed (r, engine, server_stats, _) ->
          Printf.printf "%d answer(s)\n" (List.length r.Pax_core.Run_result.answers);
          if not quiet then
            List.iter
              (fun n -> print_string (Printer.to_string n))
              r.Pax_core.Run_result.answers;
          (* Audit once, then ledger the predicted-vs-actual ratios
             into the sink *before* any metrics dump, so the printed
             telemetry and the JSON report both carry the
             pax_cost_* series for this run. *)
          let audit = Pax_core.Guarantee.audit ~engine ~ftree:ft r in
          Pax_obs.Audit.ledger sink ~engine audit;
          if stats then begin
            Format.printf "%a@."
              Cluster.pp_report r.Pax_core.Run_result.report;
            if sink.Pax_obs.Sink.enabled then begin
              print_string "# coordinator telemetry\n";
              print_string
                (Pax_obs.Metrics.dump sink.Pax_obs.Sink.metrics)
            end;
            List.iter
              (fun (site, pairs) ->
                Printf.printf "# site S%d telemetry\n" site;
                List.iter
                  (fun (name, v) -> Printf.printf "%s %g\n" name v)
                  (Pax_obs.Metrics.of_pairs pairs))
              server_stats;
            Format.printf "%a@." Pax_obs.Audit.pp audit
          end;
          (match report_out with
          | Some path ->
              let module J = Pax_obs.Json in
              let report = r.Pax_core.Run_result.report in
              write_json path
                (J.Obj
                   [
                     ("query", J.Str query_text);
                     ("engine", J.Str engine);
                     ( "answers",
                       J.int (List.length r.Pax_core.Run_result.answers) );
                     ( "report",
                       J.Obj
                         [
                           ( "rounds",
                             J.List
                               (List.map
                                  (fun l -> J.Str l)
                                  report.Cluster.rounds) );
                           ( "visits",
                             J.List
                               (Array.to_list
                                  (Array.map J.int report.Cluster.visits)) );
                           ("max_visits", J.int report.Cluster.max_visits);
                           ("total_ops", J.int report.Cluster.total_ops);
                           ("parallel_ops", J.int report.Cluster.parallel_ops);
                           ("retries", J.int report.Cluster.retries);
                           ("control_bytes", J.int report.Cluster.control_bytes);
                           ("answer_bytes", J.int report.Cluster.answer_bytes);
                           ("tree_bytes", J.int report.Cluster.tree_bytes);
                           ("n_messages", J.int report.Cluster.n_messages);
                           ("total_seconds", J.Num report.Cluster.total_seconds);
                           ( "parallel_seconds",
                             J.Num report.Cluster.parallel_seconds );
                           ("net_seconds", J.Num report.Cluster.net_seconds);
                           ( "measured_bytes",
                             match report.Cluster.measured_bytes with
                             | Some b -> J.int b
                             | None -> J.Null );
                           ( "forced_sequential",
                             J.Bool report.Cluster.forced_sequential );
                         ] );
                     ( "metrics",
                       metrics_json
                         (Pax_obs.Metrics.pairs sink.Pax_obs.Sink.metrics) );
                     ( "server_metrics",
                       J.List
                         (List.map
                            (fun (site, pairs) ->
                              J.Obj
                                [
                                  ("site", J.int site);
                                  ("metrics", metrics_json pairs);
                                ])
                            server_stats) );
                     ("audit", Pax_obs.Audit.to_json audit);
                     (* The cost ledger: the auditor's predicted bound
                        next to the actual it governs, per bound, plus
                        the run's wall-clock latency. *)
                     ( "cost",
                       J.Obj
                         [
                           ( "latency_seconds",
                             J.Num report.Cluster.total_seconds );
                           ( "bounds",
                             J.List
                               (List.map
                                  (fun (b : Pax_obs.Audit.bound) ->
                                    J.Obj
                                      [
                                        ("name", J.Str b.b_name);
                                        ("formula", J.Str b.b_formula);
                                        ("predicted_limit", J.Num b.b_limit);
                                        ("actual", J.Num b.b_actual);
                                        ( "ratio",
                                          if b.b_limit > 0. then
                                            J.Num (b.b_actual /. b.b_limit)
                                          else J.Null );
                                        ("margin", J.Num b.b_margin);
                                        ("pass", J.Bool b.b_pass);
                                      ])
                                  audit.Pax_obs.Audit.bounds) );
                         ] );
                   ])
          | None -> ());
          if show_trace then
            match r.Pax_core.Run_result.trace with
            | Some tr ->
                (* Header: the execution mode the trace was produced
                   under, read off the report rather than re-derived
                   from the flags. *)
                let report = r.Pax_core.Run_result.report in
                let mode =
                  if report.Cluster.forced_sequential then
                    Printf.sprintf
                      "sequential (fault plan active; --domains %d ignored)"
                      domains
                  else if connect <> None then "remote sites over sockets"
                  else if fault_seed <> None then
                    "sequential (fault plan active)"
                  else if domains > 1 then
                    Printf.sprintf "parallel, pool of %d domains" domains
                  else "sequential"
                in
                Format.printf "# trace: %s@.%a@." mode Pax_dist.Trace.pp tr
            | None -> ());
      match trace_out with
      | Some path -> (
          let spans = Pax_obs.Span.spans sink.Pax_obs.Sink.spans in
          match result with
          | `Distributed (_, _, _, ((_ :: _) as server_spans)) ->
              (* Distributed run over sockets: one Perfetto file with
                 the coordinator track plus every site server's,
                 aligned onto the coordinator's clock via the offsets
                 estimated at harvest (docs/OBSERVABILITY.md). *)
              let procs =
                {
                  Pax_obs.Chrome.pr_name = "coordinator";
                  pr_offset = 0.;
                  pr_spans = spans;
                }
                :: List.map
                     (fun (site, offset, sp) ->
                       {
                         Pax_obs.Chrome.pr_name =
                           Printf.sprintf "site S%d" site;
                         pr_offset = offset;
                         pr_spans = sp;
                       })
                     server_spans
              in
              Pax_obs.Chrome.write_file_processes path procs;
              Printf.printf "wrote %s: %d span(s) across %d process(es)\n"
                path
                (List.fold_left
                   (fun n p -> n + List.length p.Pax_obs.Chrome.pr_spans)
                   0 procs)
                (List.length procs)
          | _ ->
              Pax_obs.Chrome.write_file path spans;
              Printf.printf "wrote %s: %d span(s)\n" path (List.length spans))
      | None -> ()
    with
    | () -> 0
    | exception Cluster.Site_unreachable { site; stage; attempts } ->
        Printf.eprintf
          "site S%d unreachable during %s after %d attempts (retry budget \
           exhausted)\n"
          site stage attempts;
        2
    | exception Pax_dist.Transport.Remote_failure { site; message } ->
        Printf.eprintf "site S%d failed: %s\n" site message;
        2
    | exception Unix.Unix_error (err, fn, arg) ->
        Printf.eprintf "network error: %s %s: %s\n" fn arg
          (Unix.error_message err);
        2
    | exception Parser.Parse_error { pos; msg } ->
        Printf.eprintf "XML error at byte %d: %s\n" pos msg;
        1
    | exception Pax_xpath.Parse.Syntax_error { pos; msg } ->
        Printf.eprintf "query error at character %d: %s\n" pos msg;
        1
    | exception Invalid_argument e ->
        Printf.eprintf "%s\n" e;
        1
    | exception Sys_error e ->
        Printf.eprintf "%s\n" e;
        1
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let query_text =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY")
  in
  let algo =
    Arg.(value & opt algo_conv Pax2 & info [ "algo" ] ~doc:"pax2, pax3, naive or centralized.")
  in
  let annotations =
    Arg.(value & flag & info [ "annotations"; "xa" ] ~doc:"Use XPath-annotations.")
  in
  let fragment_tag =
    Arg.(value & opt (some string) None & info [ "fragment-tag" ] ~doc:"Cut at every node with this tag.")
  in
  let fragment_budget =
    Arg.(value & opt (some int) None & info [ "fragment-budget" ] ~doc:"Cut into fragments of at most this many nodes.")
  in
  let n_sites =
    Arg.(value & opt (some int) None & info [ "machines" ] ~doc:"Number of simulated sites (default: one per fragment).")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print the cost report, telemetry counters \
                   (Prometheus text format; with $(b,--connect) also \
                   each site server's) and the guarantee-auditor \
                   verdicts for the paper's visit/communication/\
                   computation bounds.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Do not print answer elements.") in
  let placement =
    Arg.(value & opt placement_conv Round_robin
         & info [ "placement" ] ~doc:"per-fragment, round-robin or balanced (with --machines).")
  in
  let simplify =
    Arg.(value & flag & info [ "simplify" ] ~doc:"Algebraically simplify the query first.")
  in
  let fault_seed =
    Arg.(value & opt (some int) None
         & info [ "fault-seed" ] ~doc:"Inject a deterministic random fault schedule with this seed.")
  in
  let fault_drop =
    Arg.(value & opt float 0.1
         & info [ "fault-drop" ] ~doc:"Per-transmission drop probability under --fault-seed.")
  in
  let fault_crash =
    Arg.(value & opt float 0.05
         & info [ "fault-crash" ] ~doc:"Per-(site, round) transient-crash probability under --fault-seed.")
  in
  let retries =
    Arg.(value & opt (some int) None
         & info [ "retries" ] ~doc:"Max delivery attempts per visit/message (default 8).")
  in
  let show_trace =
    Arg.(value & flag
         & info [ "trace" ] ~doc:"Print the structured event trace (visits, messages, retries, crashes).")
  in
  let domains =
    Arg.(value & opt int (Cluster.default_domains ())
         & info [ "domains" ]
             ~doc:"Execute each round's per-site visits on a pool of this \
                   many OCaml domains (real cores). Default 1, or \
                   $(b,PAX_DOMAINS). With $(b,--fault-seed) the run is \
                   forced sequential: fault schedules are deterministic \
                   functions of the visit order.")
  in
  let connect =
    Arg.(value & opt (some string) None
         & info [ "connect" ] ~docv:"ADDR,ADDR,..."
             ~doc:"Run the visits against live site servers (one address \
                   per site, comma-separated: $(b,unix:PATH) or \
                   $(b,HOST:PORT), matching $(b,pax serve)).  The report \
                   then includes measured socket bytes alongside the \
                   accounted traffic.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event JSON timeline of the run \
                   (rounds, site visits, wire frames) to $(docv), \
                   loadable in Perfetto (ui.perfetto.dev) or \
                   chrome://tracing.")
  in
  let report_out =
    Arg.(value & opt (some string) None
         & info [ "report-out" ] ~docv:"FILE"
             ~doc:"Write a structured JSON run report to $(docv): the \
                   cost report, the telemetry counters (coordinator and, \
                   with $(b,--connect), per site), and the guarantee \
                   audit with margins.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate an XPath query over a fragmented document.")
    Term.(
      const run $ file $ query_text $ algo $ annotations $ fragment_tag
      $ fragment_budget $ n_sites $ placement $ simplify $ stats $ quiet
      $ fault_seed $ fault_drop $ fault_crash $ retries $ show_trace
      $ domains $ connect $ trace_out $ report_out)

(* ------------------------------------------------------------------ *)
(* serve                                                              *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let run file site listen fragment_tag fragment_budget n_sites placement =
    match
      let ft = load_ftree file ~fragment_tag ~fragment_budget in
      let cluster = build_cluster ft ~n_sites ~placement in
      if site < 0 || site >= Cluster.n_sites cluster then
        invalid_arg
          (Printf.sprintf "--site %d out of range (cluster has %d sites)" site
             (Cluster.n_sites cluster));
      let addr =
        match Pax_net.Sockio.addr_of_string listen with
        | Ok a -> a
        | Error e -> invalid_arg e
      in
      let frags =
        List.map
          (fun fid -> (fid, (Fragment.fragment ft fid).Fragment.root))
          (Cluster.fragments_on cluster site)
      in
      let fd = Pax_net.Sockio.listen addr in
      Printf.printf "site S%d: %d fragment(s), listening on %s\n%!" site
        (List.length frags)
        (Pax_net.Sockio.addr_to_string addr);
      Pax_net.Server.serve (Pax_net.Server.create ~frags ()) fd;
      Unix.close fd
    with
    | () -> 0
    | exception Parser.Parse_error { pos; msg } ->
        Printf.eprintf "XML error at byte %d: %s\n" pos msg;
        1
    | exception Unix.Unix_error (err, fn, arg) ->
        Printf.eprintf "network error: %s %s: %s\n" fn arg
          (Unix.error_message err);
        2
    | exception Invalid_argument e ->
        Printf.eprintf "%s\n" e;
        1
    | exception Sys_error e ->
        Printf.eprintf "%s\n" e;
        1
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let site =
    Arg.(required & opt (some int) None
         & info [ "site" ] ~doc:"Which site of the placement to serve.")
  in
  let listen =
    Arg.(required & opt (some string) None
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Listen address: $(b,unix:PATH) or $(b,HOST:PORT).")
  in
  let fragment_tag =
    Arg.(value & opt (some string) None
         & info [ "fragment-tag" ] ~doc:"Cut at every node with this tag.")
  in
  let fragment_budget =
    Arg.(value & opt (some int) None
         & info [ "fragment-budget" ]
             ~doc:"Cut into fragments of at most this many nodes.")
  in
  let n_sites =
    Arg.(value & opt (some int) None
         & info [ "machines" ]
             ~doc:"Number of sites in the placement (default: one per \
                   fragment).  Must match the querying coordinator.")
  in
  let placement =
    Arg.(value & opt placement_conv Round_robin
         & info [ "placement" ]
             ~doc:"per-fragment, round-robin or balanced — must match the \
                   querying coordinator.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve one site's fragments to a remote coordinator ($(b,pax \
             query --connect)).  Runs until a Shutdown frame arrives.")
    Term.(
      const run $ file $ site $ listen $ fragment_tag $ fragment_budget
      $ n_sites $ placement)

(* ------------------------------------------------------------------ *)
(* coordinator                                                        *)
(* ------------------------------------------------------------------ *)

(* --qos SRC:WEIGHT:PRIO[,SRC:WEIGHT:PRIO...] — per-source scheduling
   shares (docs/SERVING.md): WEIGHT consecutive dispatches per rotation
   turn within a priority class, strict priority between classes. *)
let parse_qos spec =
  List.map
    (fun entry ->
      match String.split_on_char ':' entry with
      | [ src; w; p ] -> (
          match (int_of_string_opt w, int_of_string_opt p) with
          | Some weight, Some priority when src <> "" && weight >= 1 ->
              (src, weight, priority)
          | _ ->
              invalid_arg
                (Printf.sprintf
                   "--qos %s: expected SRC:WEIGHT:PRIO with WEIGHT >= 1" entry))
      | _ ->
          invalid_arg
            (Printf.sprintf "--qos %s: expected SRC:WEIGHT:PRIO" entry))
    (List.filter (fun s -> s <> "") (String.split_on_char ',' spec))

(* Optional bracketed options between the id and the query:
   "ID [deadline_ms=50,source=gold] QUERY".  deadline_ms becomes an
   absolute deadline at parse time — admission sheds the query (BUSY)
   when predicted cost plus the queue estimate says it cannot finish
   in time; source overrides the connection's fair-scheduling source. *)
let parse_line_opts text =
  if String.length text = 0 || text.[0] <> '[' then Ok (text, None, None)
  else
    match String.index_opt text ']' with
    | None -> Error "unterminated [options]"
    | Some close ->
        let body = String.sub text 1 (close - 1) in
        let rest =
          String.trim
            (String.sub text (close + 1) (String.length text - close - 1))
        in
        let opts =
          List.filter
            (fun s -> s <> "")
            (List.map String.trim (String.split_on_char ',' body))
        in
        List.fold_left
          (fun acc opt ->
            match acc with
            | Error _ -> acc
            | Ok (rest, deadline, source) -> (
                match String.index_opt opt '=' with
                | None -> Error (Printf.sprintf "bad option %S" opt)
                | Some eq -> (
                    let k = String.sub opt 0 eq in
                    let v =
                      String.sub opt (eq + 1) (String.length opt - eq - 1)
                    in
                    match k with
                    | "deadline_ms" -> (
                        match float_of_string_opt v with
                        | Some ms when ms >= 0. ->
                            Ok
                              ( rest,
                                Some (Pax_obs.Clock.now () +. (ms /. 1000.)),
                                source )
                        | _ -> Error (Printf.sprintf "bad deadline_ms %S" v))
                    | "source" ->
                        if v = "" then Error "empty source"
                        else Ok (rest, deadline, Some v)
                    | _ -> Error (Printf.sprintf "unknown option %S" k))))
          (Ok (rest, None, None))
          opts

(* A line-oriented front door over Pax_serve.Coordinator: clients
   connect, send "ID QUERY" lines — optionally
   "ID [deadline_ms=...,source=...] QUERY" — and read
   "ID OK|ERR|BUSY ..." lines back as each run finishes (out of order
   across in-flight ids; see docs/SERVING.md).  Each connection is one
   fair-scheduling source unless the line overrides it. *)
let coordinator_cmd =
  let run file listen connect annotations fragment_tag fragment_budget n_sites
      placement max_inflight max_queue no_cache stats qos placement_in
      placement_out =
    match
      let ft = load_ftree file ~fragment_tag ~fragment_budget in
      let sink = if stats then Pax_obs.Sink.create () else Pax_obs.Sink.noop in
      let connect_addrs = Option.map parse_connect connect in
      let n_sites =
        match (connect_addrs, n_sites) with
        | Some addrs, None -> Some (Array.length addrs)
        | _ -> n_sites
      in
      (* One prototype cluster fixes the *initial* placement; the live
         placement is the epoch-versioned table built from it (or
         loaded from a snapshot), which admin moves and the rebalancer
         mutate while runs are in flight (docs/SHARDING.md). *)
      let proto = build_cluster ft ~n_sites ~placement in
      let table =
        match placement_in with
        | None ->
            Pax_shard.Ptable.create
              ~n_frags:(Fragment.n_fragments ft)
              ~n_sites:(Cluster.n_sites proto)
              ~assign:(fun fid -> Cluster.site_of proto fid)
              ()
        | Some path -> (
            match Pax_shard.Ptable.load path with
            | Error e -> invalid_arg e
            | Ok t ->
                if
                  Pax_shard.Ptable.n_frags t <> Fragment.n_fragments ft
                  || Pax_shard.Ptable.n_sites t <> Cluster.n_sites proto
                then
                  invalid_arg
                    (Printf.sprintf
                       "placement snapshot %s: %d fragment(s) on %d site(s), \
                        but this document fragments into %d on %d"
                       path (Pax_shard.Ptable.n_frags t)
                       (Pax_shard.Ptable.n_sites t)
                       (Fragment.n_fragments ft) (Cluster.n_sites proto));
                t)
      in
      let save_table () =
        Option.iter (Pax_shard.Ptable.save table) placement_out
      in
      save_table ();
      let backend, mux =
        match connect_addrs with
        | None -> (Pax_serve.Coordinator.In_process, None)
        | Some addrs ->
            if Array.length addrs <> Cluster.n_sites proto then
              invalid_arg
                (Printf.sprintf
                   "--connect lists %d address(es) but the placement has %d \
                    sites"
                   (Array.length addrs) (Cluster.n_sites proto));
            let mux = Pax_net.Client.create ~addrs () in
            (Pax_serve.Coordinator.Sockets mux, Some mux)
      in
      (* A loaded snapshot replays its moves against the live servers:
         installs are idempotent, so a restarted coordinator converges
         the sites to its recorded placement before serving. *)
      (match (placement_in, mux) with
      | Some _, Some mux -> (
          match Pax_shard.Migrate.replay ~mux ~table () with
          | Ok () -> ()
          | Error e -> invalid_arg (Printf.sprintf "placement replay: %s" e))
      | _ -> ());
      (* Cache coherence (docs/SERVING.md): hook the servers'
         generation-vector relay into the local tree — other
         coordinators' updates then invalidate this cache — and pull
         the sites' current vectors so a coordinator joining after
         updates starts coherent instead of serving stale entries. *)
      let feed =
        Option.map
          (fun mux ->
            let feed = Pax_serve.Feed.attach ~sink ~mux ft in
            Pax_serve.Feed.sync feed;
            feed)
          mux
      in
      let cache =
        if no_cache then None else Some (Pax_serve.Cache.create ~sink ft)
      in
      (* Mount every XPath engine over the *live* table assignment;
         --annotations just picks which one answers by default (the
         first mount). *)
      let mounts =
        let assign = Pax_shard.Ptable.assign table in
        let order =
          if annotations then
            [ "pax2-xa"; "pax3-xa"; "pax2"; "pax3"; "parbox" ]
          else Pax_core.Engines.names
        in
        List.map
          (fun name ->
            match Pax_core.Engines.of_name name with
            | Some ctor ->
                Pax_serve.Coordinator.mount ~table
                  (ctor ft ~n_sites:(Cluster.n_sites proto) ~assign)
            | None -> assert false)
          order
      in
      let rebalancer = Pax_serve.Rebalance.create ~sink table in
      (* Admin operations (placement dump, manual move, rebalance) are
         serialized: one migration in flight at a time, snapshots
         written after each placement change. *)
      let admin_lock = Mutex.create () in
      let admin verb =
        Mutex.lock admin_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock admin_lock)
          (fun () ->
            match verb with
            | [ "PLACEMENT" ] ->
                Ok
                  (String.concat ","
                     (List.map
                        (fun (fid, site, epoch, visits) ->
                          Printf.sprintf "%d:%d:%d:%d:%d" fid site epoch
                            (Fragment.generation ft fid)
                            visits)
                        (Pax_shard.Ptable.to_list table)))
            | [ "MOVE"; fid; site ] -> (
                match (int_of_string_opt fid, int_of_string_opt site) with
                | Some fid, Some site -> (
                    match
                      Pax_shard.Migrate.move ?mux ~ft ~table ~fid ~dst:site ()
                    with
                    | Ok o ->
                        save_table ();
                        Option.iter
                          (fun f ->
                            Pax_serve.Feed.publish f ~fids:[ o.mv_fid ])
                          feed;
                        Ok
                          (Printf.sprintf "moved %d %d->%d epoch %d" o.mv_fid
                             o.mv_from o.mv_to o.mv_epoch)
                    | Error e -> Error e)
                | _ -> Error "expected: ADMIN MOVE FID SITE")
            | [ "STATS" ] ->
                (* One reply line (the protocol is line-oriented):
                   space-separated series=value pairs, the coordinator
                   section first, then one per reachable site server
                   — empty without --stats, since the serving sink is
                   then the no-op one. *)
                let dump_pairs pairs =
                  String.concat " "
                    (List.map
                       (fun (k, v) -> Printf.sprintf "%s=%g" k v)
                       pairs)
                in
                let coord_section =
                  "coordinator "
                  ^ dump_pairs (Pax_obs.Metrics.pairs sink.Pax_obs.Sink.metrics)
                in
                let site_sections =
                  match mux with
                  | None -> []
                  | Some mux ->
                      List.init (Cluster.n_sites proto) (fun site ->
                          match Pax_net.Client.fetch_stats mux site with
                          | pairs ->
                              Printf.sprintf "site%d %s" site
                                (dump_pairs pairs)
                          | exception _ ->
                              Printf.sprintf "site%d unreachable" site)
                in
                Ok (String.concat " ; " (coord_section :: site_sections))
            | [ "REBALANCE" ] -> (
                match
                  Pax_serve.Rebalance.run ?mux ~ft rebalancer
                    ~now:(Unix.gettimeofday ())
                with
                | Ok moves ->
                    save_table ();
                    Option.iter Pax_serve.Feed.publish_all feed;
                    Ok
                      (Printf.sprintf "moves %d%s" (List.length moves)
                         (String.concat ""
                            (List.map
                               (fun (o : Pax_shard.Migrate.outcome) ->
                                 Printf.sprintf " %d:%d->%d" o.mv_fid o.mv_from
                                   o.mv_to)
                               moves)))
                | Error e -> Error e)
            | _ -> Error "unknown admin verb")
      in
      let coord =
        Pax_serve.Coordinator.create ?max_inflight ?max_queue ?cache ~sink
          backend mounts
      in
      Option.iter
        (fun spec ->
          List.iter
            (fun (source, weight, priority) ->
              Pax_serve.Coordinator.configure_source coord ~source ~weight
                ~priority ())
            (parse_qos spec))
        qos;
      let addr =
        match Pax_net.Sockio.addr_of_string listen with
        | Ok a -> a
        | Error e -> invalid_arg e
      in
      let fd = Pax_net.Sockio.listen addr in
      Printf.printf
        "coordinator: %d fragment(s) on %d site(s) (%s), listening on %s\n%!"
        (Fragment.n_fragments ft) (Cluster.n_sites proto)
        (match mux with Some _ -> "sockets" | None -> "in-process")
        (Pax_net.Sockio.addr_to_string addr);
      let n_clients = ref 0 in
      let handle_client cfd source =
        let inb = Unix.in_channel_of_descr cfd in
        let wlock = Mutex.create () in
        let reply line =
          Mutex.lock wlock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock wlock)
            (fun () ->
              try
                ignore
                  (Unix.write_substring cfd (line ^ "\n") 0
                     (String.length line + 1))
              with Unix.Unix_error _ -> ())
        in
        let rec loop () =
          match input_line inb with
          | exception End_of_file -> ()
          | line -> (
              let line = String.trim line in
              if line = "" then loop ()
              else
                match String.index_opt line ' ' with
                | None ->
                    reply (line ^ " ERR expected: ID QUERY");
                    loop ()
                | Some sp -> (
                    let id = String.sub line 0 sp in
                    let text =
                      String.trim
                        (String.sub line (sp + 1)
                           (String.length line - sp - 1))
                    in
                    match String.split_on_char ' ' text with
                    | "ADMIN" :: verb ->
                        (match admin (List.filter (fun s -> s <> "") verb) with
                        | Ok detail -> reply (id ^ " OK " ^ detail)
                        | Error e -> reply (id ^ " ERR " ^ e));
                        loop ()
                    | _ -> (
                    match parse_line_opts text with
                    | Error e ->
                        reply (id ^ " ERR " ^ e);
                        loop ()
                    | Ok (text, deadline, src_override) -> (
                    let source = Option.value ~default:source src_override in
                    match
                      Pax_serve.Coordinator.submit ~source ?deadline coord text
                    with
                    | Error (Pax_serve.Coordinator.Rejected r) ->
                        reply
                          (Format.asprintf "%s BUSY %a" id
                             Pax_serve.Sched.pp_rejection r);
                        loop ()
                    | Error e ->
                        reply
                          (Printf.sprintf "%s ERR %s" id
                             (Pax_serve.Coordinator.error_message e));
                        loop ()
                    | Ok tk ->
                        ignore
                          (Thread.create
                             (fun () ->
                               match Pax_serve.Coordinator.await tk with
                               | Ok (o : Pax_serve.Coordinator.Pe.outcome) ->
                                   reply
                                     (Printf.sprintf "%s OK %d %s" id
                                        (List.length o.answer_keys)
                                        (String.concat ","
                                           (List.map string_of_int
                                              o.answer_keys)))
                               | Error e ->
                                   reply
                                     (Printf.sprintf "%s ERR %s" id
                                        (Printexc.to_string e)))
                             ());
                        loop ()))))
        in
        loop ();
        (try Unix.close cfd with Unix.Unix_error _ -> ())
      in
      let rec accept_loop () =
        let cfd, _ = Unix.accept fd in
        incr n_clients;
        let source = Printf.sprintf "client-%d" !n_clients in
        ignore (Thread.create (fun () -> handle_client cfd source) ());
        accept_loop ()
      in
      accept_loop ()
    with
    | () -> 0
    | exception Parser.Parse_error { pos; msg } ->
        Printf.eprintf "XML error at byte %d: %s\n" pos msg;
        1
    | exception Unix.Unix_error (err, fn, arg) ->
        Printf.eprintf "network error: %s %s: %s\n" fn arg
          (Unix.error_message err);
        2
    | exception Invalid_argument e ->
        Printf.eprintf "%s\n" e;
        1
    | exception Sys_error e ->
        Printf.eprintf "%s\n" e;
        1
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let listen =
    Arg.(required & opt (some string) None
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Accept query submissions on $(b,unix:PATH) or \
                   $(b,HOST:PORT).")
  in
  let connect =
    Arg.(value & opt (some string) None
         & info [ "connect" ] ~docv:"ADDR,ADDR,..."
             ~doc:"Run visits against live site servers (one address per \
                   site, matching $(b,pax serve)); without it each run \
                   executes in-process.")
  in
  let annotations =
    Arg.(value & flag & info [ "annotations"; "xa" ] ~doc:"Use XPath-annotations.")
  in
  let fragment_tag =
    Arg.(value & opt (some string) None
         & info [ "fragment-tag" ] ~doc:"Cut at every node with this tag.")
  in
  let fragment_budget =
    Arg.(value & opt (some int) None
         & info [ "fragment-budget" ]
             ~doc:"Cut into fragments of at most this many nodes.")
  in
  let n_sites =
    Arg.(value & opt (some int) None
         & info [ "machines" ]
             ~doc:"Number of sites in the placement (default: one per \
                   fragment, or one per $(b,--connect) address).")
  in
  let placement =
    Arg.(value & opt placement_conv Round_robin
         & info [ "placement" ]
             ~doc:"per-fragment, round-robin or balanced — must match the \
                   site servers.")
  in
  let max_inflight =
    Arg.(value & opt (some int) None
         & info [ "max-inflight" ]
             ~doc:"Concurrent runs in flight (default 4).")
  in
  let max_queue =
    Arg.(value & opt (some int) None
         & info [ "max-queue" ]
             ~doc:"Admission queue bound; submissions beyond it get a \
                   $(b,BUSY) reply (default 64).")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ]
             ~doc:"Disable the cross-query stage-result cache.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Collect serving telemetry.")
  in
  let qos =
    Arg.(value & opt (some string) None
         & info [ "qos" ] ~docv:"SRC:WEIGHT:PRIO,..."
             ~doc:"Per-source scheduling shares: $(b,WEIGHT) consecutive \
                   dispatches per rotation turn within a priority class, \
                   strict $(b,PRIO) between classes (higher first).  \
                   Unlisted sources get weight 1, priority 0.")
  in
  let placement_in =
    Arg.(value & opt (some string) None
         & info [ "placement-in" ] ~docv:"PATH"
             ~doc:"Load the placement table from a snapshot (pax admin \
                   placement state survives a coordinator restart; with \
                   $(b,--connect), recorded moves are replayed against the \
                   live servers before serving).")
  in
  let placement_out =
    Arg.(value & opt (some string) None
         & info [ "placement-out" ] ~docv:"PATH"
             ~doc:"Write the placement table here at startup and after \
                   every move (atomic snapshot, docs/SHARDING.md).")
  in
  Cmd.v
    (Cmd.info "coordinator"
       ~doc:"Serve queries concurrently over a fragmented document: a \
             bounded admission queue, fair scheduling across client \
             connections, an optional cross-query cache (docs/SERVING.md) \
             and an epoch-versioned placement table with live fragment \
             migration (docs/SHARDING.md).  Runs until killed.")
    Term.(
      const run $ file $ listen $ connect $ annotations $ fragment_tag
      $ fragment_budget $ n_sites $ placement $ max_inflight $ max_queue
      $ no_cache $ stats $ qos $ placement_in $ placement_out)

(* ------------------------------------------------------------------ *)
(* admin                                                              *)
(* ------------------------------------------------------------------ *)

(* Thin client for the coordinator's ADMIN verbs: connect to its line
   protocol, issue one verb, print the reply. *)
let admin_cmd =
  let issue coordinator verb =
    match
      let addr =
        match Pax_net.Sockio.addr_of_string coordinator with
        | Ok a -> a
        | Error e -> invalid_arg e
      in
      let fd = Pax_net.Sockio.connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let line = "0 ADMIN " ^ verb ^ "\n" in
          ignore (Unix.write_substring fd line 0 (String.length line));
          let inb = Unix.in_channel_of_descr fd in
          match input_line inb with
          | exception End_of_file -> failwith "coordinator closed the connection"
          | reply -> (
              match String.split_on_char ' ' reply with
              | "0" :: "OK" :: rest ->
                  print_endline (String.concat " " rest);
                  `Ok
              | "0" :: "ERR" :: rest ->
                  Printf.eprintf "error: %s\n" (String.concat " " rest);
                  `Err
              | _ -> failwith ("unexpected reply: " ^ reply)))
    with
    | `Ok -> 0
    | `Err -> 1
    | exception Invalid_argument e | exception Failure e ->
        Printf.eprintf "%s\n" e;
        1
    | exception Unix.Unix_error (err, fn, arg) ->
        Printf.eprintf "network error: %s %s: %s\n" fn arg
          (Unix.error_message err);
        2
  in
  let coordinator =
    Arg.(required & opt (some string) None
         & info [ "coordinator" ] ~docv:"ADDR"
             ~doc:"The coordinator's $(b,--listen) address ($(b,unix:PATH) \
                   or $(b,HOST:PORT)).")
  in
  let placement =
    let run coordinator = issue coordinator "PLACEMENT" in
    Cmd.v
      (Cmd.info "placement"
         ~doc:"Dump the live placement table as \
               fid:site:epoch:generation:visits, comma-separated.")
      Term.(const run $ coordinator)
  in
  let move =
    let run coordinator fid site =
      issue coordinator (Printf.sprintf "MOVE %d %d" fid site)
    in
    let fid = Arg.(required & pos 0 (some int) None & info [] ~docv:"FID") in
    let site = Arg.(required & pos 1 (some int) None & info [] ~docv:"SITE") in
    Cmd.v
      (Cmd.info "move"
         ~doc:"Live-migrate one fragment to a site (fetch, install, fence; \
               docs/SHARDING.md).  In-flight queries are unaffected.")
      Term.(const run $ coordinator $ fid $ site)
  in
  let rebalance =
    let run coordinator = issue coordinator "REBALANCE" in
    Cmd.v
      (Cmd.info "rebalance"
         ~doc:"Run the greedy hot-shard rebalancer over the accumulated \
               per-fragment visit counters.")
      Term.(const run $ coordinator)
  in
  let stats =
    let run coordinator = issue coordinator "STATS" in
    Cmd.v
      (Cmd.info "stats"
         ~doc:"Dump the coordinator's telemetry (space-separated \
               series=value pairs, including the per-run cost ledger's \
               pax_cost_* series) and, when it runs over sockets, each \
               site server's counters.  Empty unless the coordinator \
               was started with $(b,--stats).")
      Term.(const run $ coordinator)
  in
  Cmd.group
    (Cmd.info "admin"
       ~doc:"Administration against a running coordinator: placement \
             (docs/SHARDING.md) and telemetry (docs/OBSERVABILITY.md).")
    [ placement; move; rebalance; stats ]

(* ------------------------------------------------------------------ *)
(* count                                                              *)
(* ------------------------------------------------------------------ *)

let count_cmd =
  let run file query_text annotations fragment_tag fragment_budget n_sites
      stats =
    match
      let ft = load_ftree file ~fragment_tag ~fragment_budget in
      let q = Query.of_string query_text in
      let cluster = build_cluster ft ~n_sites ~placement:Round_robin in
      let n, report = Pax_core.Count.run ~annotations cluster q in
      Printf.printf "%d\n" n;
      if stats then Format.printf "%a@." Cluster.pp_report report
    with
    | () -> 0
    | exception Parser.Parse_error { pos; msg } ->
        Printf.eprintf "XML error at byte %d: %s\n" pos msg;
        1
    | exception Pax_xpath.Parse.Syntax_error { pos; msg } ->
        Printf.eprintf "query error at character %d: %s\n" pos msg;
        1
    | exception Sys_error e ->
        Printf.eprintf "%s\n" e;
        1
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let query_text =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY")
  in
  let annotations =
    Arg.(value & flag & info [ "annotations"; "xa" ] ~doc:"Use XPath-annotations.")
  in
  let fragment_tag =
    Arg.(value & opt (some string) None & info [ "fragment-tag" ] ~doc:"Cut at every node with this tag.")
  in
  let fragment_budget =
    Arg.(value & opt (some int) None & info [ "fragment-budget" ] ~doc:"Cut into fragments of at most this many nodes.")
  in
  let n_sites =
    Arg.(value & opt (some int) None & info [ "machines" ] ~doc:"Number of simulated sites.")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print the cost report.") in
  Cmd.v
    (Cmd.info "count" ~doc:"Count answers without shipping them.")
    Term.(
      const run $ file $ query_text $ annotations $ fragment_tag
      $ fragment_budget $ n_sites $ stats)

(* ------------------------------------------------------------------ *)
(* fragment                                                           *)
(* ------------------------------------------------------------------ *)

let fragment_cmd =
  let run file output fragment_tag fragment_budget dot =
    match
      let doc = Parser.parse_file file in
      let cuts = make_cuts doc ~fragment_tag ~fragment_budget in
      let ft = Fragment.fragmentize doc ~cuts in
      Pax_frag.Store.save ft ~dir:output;
      Printf.printf "wrote %s: %d fragments, %d nodes\n" output
        (Fragment.n_fragments ft) doc.Tree.node_count;
      if dot then print_string (Fragment.to_dot ft)
      else Format.printf "%a@." Fragment.pp ft
    with
    | () -> 0
    | exception Parser.Parse_error { pos; msg } ->
        Printf.eprintf "XML error at byte %d: %s\n" pos msg;
        1
    | exception Sys_error e ->
        Printf.eprintf "%s\n" e;
        1
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let output =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~doc:"Store directory." ~docv:"DIR")
  in
  let fragment_tag =
    Arg.(value & opt (some string) None & info [ "fragment-tag" ] ~doc:"Cut at every node with this tag.")
  in
  let fragment_budget =
    Arg.(value & opt (some int) None & info [ "fragment-budget" ] ~doc:"Cut into fragments of at most this many nodes.")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Print the fragment tree as Graphviz dot.")
  in
  Cmd.v
    (Cmd.info "fragment" ~doc:"Fragment a document into an on-disk store.")
    Term.(const run $ file $ output $ fragment_tag $ fragment_budget $ dot)

(* ------------------------------------------------------------------ *)
(* assemble                                                           *)
(* ------------------------------------------------------------------ *)

let assemble_cmd =
  let run store output =
    match
      let ft = Pax_frag.Store.load ~dir:store in
      let xml = Printer.to_string ~indent:true (Fragment.reassemble ft) in
      match output with
      | Some path ->
          let oc = open_out path in
          output_string oc xml;
          close_out oc;
          Printf.printf "wrote %s (%d bytes)\n" path (String.length xml)
      | None -> print_string xml
    with
    | () -> 0
    | exception Pax_frag.Store.Corrupt e ->
        Printf.eprintf "corrupt store: %s\n" e;
        1
    | exception Sys_error e ->
        Printf.eprintf "%s\n" e;
        1
  in
  let store = Arg.(required & pos 0 (some dir) None & info [] ~docv:"STORE") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "assemble" ~doc:"Reassemble a fragment store into one document.")
    Term.(const run $ store $ output)

(* ------------------------------------------------------------------ *)
(* inspect                                                            *)
(* ------------------------------------------------------------------ *)

let inspect_cmd =
  let run file =
    match Parser.parse_file file with
    | doc ->
        let tags = Hashtbl.create 64 in
        Tree.iter
          (fun n ->
            Hashtbl.replace tags n.Tree.tag
              (1 + Option.value ~default:0 (Hashtbl.find_opt tags n.Tree.tag)))
          doc.Tree.root;
        Printf.printf "nodes: %d\ndepth: %d\nbytes: %d\ndistinct tags: %d\n"
          doc.Tree.node_count (Tree.depth doc.Tree.root)
          (Tree.byte_size doc.Tree.root) (Hashtbl.length tags);
        let sorted =
          List.sort (fun (_, a) (_, b) -> compare b a)
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tags [])
        in
        List.iteri
          (fun i (tag, n) -> if i < 15 then Printf.printf "  %-20s %d\n" tag n)
          sorted;
        0
    | exception Parser.Parse_error { pos; msg } ->
        Printf.eprintf "XML error at byte %d: %s\n" pos msg;
        1
    | exception Sys_error e ->
        Printf.eprintf "%s\n" e;
        1
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "inspect" ~doc:"Show document statistics.") Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* explain                                                            *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let run query_text =
    match Query.of_string query_text with
    | q ->
        Format.printf "source:      %s@." q.Query.source;
        Format.printf "ast:         %a@." Pax_xpath.Ast.pp q.Query.ast;
        Format.printf "normal form: %a@." Pax_xpath.Normal.pp q.Query.normal;
        Format.printf "selection:   %a@."
          (fun ppf steps ->
            List.iter (fun s -> Format.fprintf ppf "%a " Pax_xpath.Normal.pp_step s) steps)
          (Pax_xpath.Normal.selection_path q.Query.normal);
        Format.printf "compiled:    %a@." Pax_xpath.Compile.pp q.Query.compiled;
        0
    | exception Pax_xpath.Parse.Syntax_error { pos; msg } ->
        Printf.eprintf "query error at character %d: %s\n" pos msg;
        1
  in
  let query_text =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY")
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Parse, normalize and compile a query.")
    Term.(const run $ query_text)

let () =
  let info =
    Cmd.info "pax" ~version:"1.0.0"
      ~doc:"Distributed XPath evaluation with performance guarantees (SIGMOD 2007)."
  in
  exit (Cmd.eval' (Cmd.group info
       [ gen_cmd; query_cmd; count_cmd; fragment_cmd; assemble_cmd; inspect_cmd;
         explain_cmd; serve_cmd; coordinator_cmd; admin_cmd ]))

(* One-pass streaming evaluation: no tree, just SAX events.

   Compares the streaming engine against the two-pass centralized
   evaluator on the same document: identical answers, bounded state
   (ancestor stack + undecided candidates).

     dune exec examples/streaming.exe *)

module Tree = Pax_xml.Tree
module Printer = Pax_xml.Printer
module Query = Pax_xpath.Query
module Stream_eval = Pax_core.Stream_eval
module Xmark = Pax_xmark.Xmark

let () =
  let doc = Xmark.doc ~seed:8 ~total_nodes:30_000 ~n_sites:3 in
  let xml = Printer.to_string doc.Tree.root in
  Printf.printf "Document: %d nodes, %d KB serialized\n\n" doc.Tree.node_count
    (String.length xml / 1024);
  Printf.printf "%-6s %8s %8s | %9s %10s %13s\n" "query" "answers" "agree"
    "elements" "max depth" "peak pending";
  List.iter
    (fun (name, qs) ->
      let q = Query.of_string qs in
      let stream = Stream_eval.over_string q xml in
      let tree = Pax_core.Centralized.run q doc.Tree.root in
      let tree_indices =
        Stream_eval.indices_of_answers doc.Tree.root
          tree.Pax_core.Centralized.answers
      in
      Printf.printf "%-6s %8d %8b | %9d %10d %13d\n" name
        (List.length stream.Stream_eval.matches)
        (stream.Stream_eval.matches = tree_indices)
        stream.Stream_eval.elements stream.Stream_eval.max_depth
        stream.Stream_eval.peak_pending)
    Xmark.queries;
  print_endline
    "\nThe streaming engine holds one frame per OPEN element (the ancestor\n\
     stack) plus the candidates whose qualifiers are still undecided -\n\
     never the document."

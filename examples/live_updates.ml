(* Updates on a live fragmented store (paper §8, future work).

   The clientele tree stays fragmented across sites while positions are
   traded: inserts, deletions and text updates are routed to the single
   owning site, and queries keep answering correctly in between — no
   refragmentation, no data shipping.

     dune exec examples/live_updates.exe *)

module Tree = Pax_xml.Tree
module Parser = Pax_xml.Parser
module Query = Pax_xpath.Query
module Fragment = Pax_frag.Fragment
module Update = Pax_frag.Update
module Cluster = Pax_dist.Cluster

let () =
  let doc =
    Parser.parse_string
      {|<clientele>
          <client><name>Anna</name><country>US</country>
            <broker><name>E*trade</name>
              <market><name>NASDAQ</name>
                <stock><code>GOOG</code><buy>374</buy><qt>40</qt></stock>
              </market>
            </broker>
          </client>
          <client><name>Lisa</name><country>Canada</country>
            <broker><name>CIBC</name>
              <market><name>TSE</name>
                <stock><code>GOOG</code><buy>382</buy><qt>90</qt></stock>
              </market>
            </broker>
          </client>
        </clientele>|}
  in
  let ft =
    Fragment.fragmentize doc ~cuts:(Fragment.cuts_by_tag doc ~tag:"broker")
  in
  let cluster = Cluster.one_site_per_fragment ft in
  let fresh = Tree.builder_from 100_000 in

  let goog_positions () =
    let q = Query.of_string "//broker[//stock/code/text() = \"GOOG\"]/name" in
    let r = Pax_core.Pax2.run cluster q in
    String.concat ", " (List.map Tree.text_of r.Pax_core.Run_result.answers)
  in
  let show_step msg = Printf.printf "%-52s brokers holding GOOG: %s\n" msg (goog_positions ()) in

  show_step "initial state";

  (* Lisa's CIBC broker sells its GOOG position. *)
  let tse_goog =
    List.find
      (fun (n : Tree.node) ->
        List.exists (fun (c : Tree.node) -> Tree.text_of c = "GOOG") n.Tree.children
        && List.exists (fun (c : Tree.node) -> Tree.text_of c = "382") n.Tree.children)
      (Tree.select (fun n -> n.Tree.tag = "stock") (Fragment.reassemble ft))
  in
  (match Update.apply ft (Update.Delete tse_goog.Tree.id) with
  | Ok fid -> Printf.printf "  [site of F%d] deleted CIBC's GOOG position\n" fid
  | Error e -> failwith (Update.error_to_string e));
  show_step "after CIBC sells GOOG";

  (* A new market opens under CIBC with a fresh GOOG position. *)
  let cibc =
    List.find
      (fun (n : Tree.node) ->
        n.Tree.tag = "broker"
        && List.exists (fun (c : Tree.node) -> Tree.text_of c = "CIBC") n.Tree.children)
      (Tree.select (fun n -> n.Tree.tag = "broker") (Fragment.reassemble ft))
  in
  let new_market =
    Tree.elem fresh "market"
      [
        Tree.leaf fresh "name" "NYSE";
        Tree.elem fresh "stock"
          [ Tree.leaf fresh "code" "GOOG"; Tree.leaf fresh "buy" "395";
            Tree.leaf fresh "qt" "25" ];
      ]
  in
  (match Update.apply ft (Update.Insert (cibc.Tree.id, new_market)) with
  | Ok fid -> Printf.printf "  [site of F%d] CIBC buys GOOG on NYSE\n" fid
  | Error e -> failwith (Update.error_to_string e));
  show_step "after CIBC re-enters via NYSE";

  (* Illegal operations are refused, the store stays consistent. *)
  (match Update.apply ft (Update.Delete cibc.Tree.id) with
  | Error e -> Printf.printf "  refused as expected: %s\n" (Update.error_to_string e)
  | Ok _ -> failwith "should have been refused");
  show_step "after a refused delete (broker is a fragment root)";

  (* Count without shipping: how many stock positions exist now? *)
  let n, report = Pax_core.Count.run cluster (Query.of_string "//stock") in
  Printf.printf
    "\ncount(//stock) = %d  — %d control bytes, %d answer bytes, %d visits max\n"
    n report.Cluster.control_bytes report.Cluster.answer_bytes
    report.Cluster.max_visits

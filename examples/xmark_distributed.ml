(* XMark over ten sites: the setting of the paper's experiments.

   Generates an XMark-style document, places one "site" subtree per
   machine (the FT1 layout of Fig. 8), and runs the paper's queries
   Q1-Q4 under every algorithm, printing a cost comparison.

     dune exec examples/xmark_distributed.exe *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Xmark = Pax_xmark.Xmark

let () =
  let n_machines = 10 in
  let doc = Xmark.doc ~seed:1 ~total_nodes:40_000 ~n_sites:n_machines in
  Printf.printf "XMark document: %d nodes (%d KB serialized), %d sites\n\n"
    doc.Tree.node_count
    (Tree.byte_size doc.Tree.root / 1024)
    n_machines;
  let cuts = Fragment.cuts_by_tag doc ~tag:"site" in
  let ft = Fragment.fragmentize doc ~cuts in
  let cluster = Cluster.one_site_per_fragment ft in

  Printf.printf "%-4s %-10s %6s %8s %9s %10s %10s %9s\n" "Q" "algorithm"
    "ans" "visits" "par(ms)" "total(ms)" "ctl bytes" "ans bytes";
  let line = String.make 76 '-' in
  print_endline line;
  List.iter
    (fun (name, qs) ->
      let q = Query.of_string qs in
      let algos =
        [
          ("PaX3-NA", fun () -> Pax_core.Pax3.run cluster q);
          ("PaX3-XA", fun () -> Pax_core.Pax3.run ~annotations:true cluster q);
          ("PaX2-NA", fun () -> Pax_core.Pax2.run cluster q);
          ("PaX2-XA", fun () -> Pax_core.Pax2.run ~annotations:true cluster q);
          ("Naive", fun () -> Pax_core.Naive.run cluster q);
        ]
      in
      List.iter
        (fun (algo, run) ->
          let r = run () in
          let rep = r.Pax_core.Run_result.report in
          Printf.printf "%-4s %-10s %6d %8d %9.2f %10.2f %10d %9d\n" name algo
            (List.length r.Pax_core.Run_result.answers)
            rep.Cluster.max_visits
            (1000. *. rep.Cluster.parallel_seconds)
            (1000. *. rep.Cluster.total_seconds)
            rep.Cluster.control_bytes
            (rep.Cluster.answer_bytes + rep.Cluster.tree_bytes))
        algos;
      print_endline line)
    Xmark.queries;
  print_endline
    "\n(\"Naive\" answer bytes include the shipped fragments; PaX ships only answers.)"

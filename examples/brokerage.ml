(* Brokerage: the regulatory-placement scenario of the paper's
   introduction, at a larger scale.

   A brokerage holds one tree of clients; regulation forces per-country
   placement (Canadian trade data on a Canadian server) and market rules
   force NASDAQ subtrees onto the exchange's own site.  The example
   shows how annotation-based routing keeps queries away from sites that
   cannot contribute, and how the communication bill stays proportional
   to the answer.

     dune exec examples/brokerage.exe *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Rng = Pax_xmark.Rng

let markets = [| "NASDAQ"; "NYSE"; "TSE"; "LSE" |]
let codes = [| "GOOG"; "YHOO"; "IBM"; "MSFT"; "ORCL"; "RIM" |]
let countries = [| "US"; "US"; "US"; "Canada"; "Canada"; "UK" |]
let brokers = [| "E*trade"; "Bache"; "CIBC"; "Schwab"; "Barclays" |]

let build ~clients ~seed =
  let b = Tree.builder () in
  let rng = Rng.create ~seed in
  let stock () =
    Tree.elem b "stock"
      [
        Tree.leaf b "code" (Rng.pick rng codes);
        Tree.leaf b "buy" (string_of_int (Rng.range rng 10 500));
        Tree.leaf b "qt" (string_of_int (Rng.range rng 1 100));
      ]
  in
  let market () =
    Tree.elem b "market"
      (Tree.leaf b "name" (Rng.pick rng markets)
      :: List.init (Rng.range rng 1 4) (fun _ -> stock ()))
  in
  let broker () =
    Tree.elem b "broker"
      (Tree.leaf b "name" (Rng.pick rng brokers)
      :: List.init (Rng.range rng 1 3) (fun _ -> market ()))
  in
  let client i =
    Tree.elem b "client"
      [
        Tree.leaf b "name" (Printf.sprintf "client%d" i);
        Tree.leaf b "country" (Rng.pick rng countries);
        broker ();
      ]
  in
  Tree.doc_of_root (Tree.elem b "clientele" (List.init clients client))

let () =
  let doc = build ~clients:400 ~seed:2007 in
  Printf.printf "Clientele: %d nodes (%d clients)\n" doc.Tree.node_count 400;

  (* Regulatory fragmentation: every Canadian client subtree moves to
     the Canadian site; every NASDAQ market moves to the exchange site. *)
  let canadian =
    Tree.select
      (fun n ->
        n.Tree.tag = "client"
        && List.exists
             (fun (c : Tree.node) ->
               c.Tree.tag = "country" && Tree.text_of c = "Canada")
             n.Tree.children)
      doc.Tree.root
  in
  let nasdaq =
    Tree.select
      (fun n ->
        n.Tree.tag = "market"
        && List.exists (fun (c : Tree.node) -> Tree.text_of c = "NASDAQ") n.Tree.children)
      doc.Tree.root
  in
  let cuts = List.map (fun (n : Tree.node) -> n.Tree.id) (canadian @ nasdaq) in
  let ft = Fragment.fragmentize doc ~cuts in
  Printf.printf "Fragments: %d (1 home + %d Canadian clients + %d NASDAQ markets)\n"
    (Fragment.n_fragments ft) (List.length canadian) (List.length nasdaq);

  (* Three sites: home (US), Canada, NASDAQ. *)
  let canada_roots = List.map (fun (n : Tree.node) -> n.Tree.id) canadian in
  let cluster =
    Cluster.create ~ftree:ft ~n_sites:3 ~assign:(fun fid ->
        if fid = 0 then 0
        else
          let root = (Fragment.fragment ft fid).Fragment.root in
          if List.mem root.Tree.id canada_roots then 1 else 2)
      ()
  in

  let run name annotations qs =
    let q = Query.of_string qs in
    let r = Pax_core.Pax2.run ~annotations cluster q in
    let rep = r.Pax_core.Run_result.report in
    Printf.printf
      "%-42s %-4s %4d ans | visits home/CA/NQ = %d/%d/%d | %6d ctl + %6d ans bytes\n"
      qs name
      (List.length r.Pax_core.Run_result.answers)
      rep.Cluster.visits.(0) rep.Cluster.visits.(1) rep.Cluster.visits.(2)
      rep.Cluster.control_bytes rep.Cluster.answer_bytes
  in

  print_newline ();
  (* Client names: no market data involved; with annotations the NASDAQ
     site is never contacted. *)
  run "NA" false "client/name";
  run "XA" true "client/name";
  print_newline ();
  (* Canadian GOOG positions: touches home + Canada + NASDAQ (markets of
     Canadian clients stayed home? no - their brokers' NASDAQ subtrees
     live on the exchange site). *)
  run "NA" false "client[country/text() = \"Canada\"]//stock[code/text() = \"GOOG\"]/qt";
  run "XA" true "client[country/text() = \"Canada\"]//stock[code/text() = \"GOOG\"]/qt";
  print_newline ();
  (* Compare against shipping everything home. *)
  let q = Query.of_string "client//stock[code/text() = \"GOOG\"]/qt" in
  let naive = Pax_core.Naive.run cluster q in
  let pax = Pax_core.Pax2.run ~annotations:true cluster q in
  let nb = naive.Pax_core.Run_result.report in
  let pb = pax.Pax_core.Run_result.report in
  Printf.printf
    "GOOG positions firm-wide: naive ships %d tree bytes; PaX2-XA ships %d control + %d answer bytes\n"
    nb.Cluster.tree_bytes pb.Cluster.control_bytes pb.Cluster.answer_bytes

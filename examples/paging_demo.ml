(* Evaluating a document larger than main memory (paper §1 and §8).

   Pretend main memory holds only [budget] tree nodes.  Fragment the
   document to fit, then compare two paging strategies:

   - partial evaluation (PaX2's combined pass): each fragment is paged
     in exactly once; what remains are residual formulas;
   - conventional two-pass evaluation: every fragment is paged once per
     pass, plus again for candidate resolution.

     dune exec examples/paging_demo.exe *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Paging = Pax_core.Paging
module Xmark = Pax_xmark.Xmark

let () =
  let doc = Xmark.doc ~seed:3 ~total_nodes:60_000 ~n_sites:4 in
  Printf.printf "Document: %d nodes (%d KB). Memory budget: 4000 nodes.\n\n"
    doc.Tree.node_count
    (Tree.byte_size doc.Tree.root / 1024);
  Printf.printf "%-60s %9s %7s %9s\n" "query / strategy" "fragments" "swaps"
    "MB paged";
  let line = String.make 88 '-' in
  print_endline line;
  List.iter
    (fun (name, qs) ->
      let q = Query.of_string qs in
      let pe = Paging.run ~memory_budget:4000 q doc in
      let tp = Paging.run_two_pass ~memory_budget:4000 q doc in
      assert (pe.Paging.answer_ids = tp.Paging.answer_ids);
      Printf.printf "%s  (%d answers)\n" name (List.length pe.Paging.answer_ids);
      Printf.printf "%-60s %9d %7d %9.2f\n" "  partial evaluation (one pass)"
        pe.Paging.n_fragments pe.Paging.swap_ins
        (float_of_int pe.Paging.bytes_loaded /. 1e6);
      Printf.printf "%-60s %9d %7d %9.2f\n" "  conventional two-pass"
        tp.Paging.n_fragments tp.Paging.swap_ins
        (float_of_int tp.Paging.bytes_loaded /. 1e6);
      print_endline line)
    Xmark.queries

(* Quickstart: the paper's running example end to end.

   Build the investment-company clientele tree of Fig. 1, fragment it as
   in Fig. 2, place the fragments on four simulated sites, and evaluate
   the introduction's queries with ParBoX (Boolean), PaX3 and PaX2.

     dune exec examples/quickstart.exe *)

module Tree = Pax_xml.Tree
module Parser = Pax_xml.Parser
module Query = Pax_xpath.Query
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster

let clientele_xml =
  {|<clientele>
      <client><name>Anna</name><country>US</country>
        <broker><name>E*trade</name>
          <market><name>NASDAQ</name>
            <stock><code>GOOG</code><buy>374</buy><qt>40</qt></stock>
            <stock><code>YHOO</code><buy>33</buy><qt>40</qt></stock>
          </market>
        </broker>
      </client>
      <client><name>Kim</name><country>US</country>
        <broker><name>Bache</name>
          <market><name>NYSE</name>
            <stock><code>IBM</code><buy>80</buy><qt>50</qt></stock>
          </market>
          <market><name>NASDAQ</name>
            <stock><code>GOOG</code><buy>370</buy><qt>75</qt></stock>
          </market>
        </broker>
      </client>
      <client><name>Lisa</name><country>Canada</country>
        <broker><name>CIBC</name>
          <market><name>TSE</name>
            <stock><code>GOOG</code><buy>382</buy><qt>90</qt></stock>
          </market>
        </broker>
      </client>
    </clientele>|}

let () =
  let doc = Parser.parse_string clientele_xml in
  Printf.printf "Document: %d nodes, %d bytes serialized\n" doc.Tree.node_count
    (Tree.byte_size doc.Tree.root);

  (* Fragment: every broker and every NASDAQ market becomes its own
     fragment, echoing the regulatory story of the paper's intro
     (Canadian data on a Canadian server, NASDAQ data only behind
     recognized brokers). *)
  let cuts =
    List.filter_map
      (fun (n : Tree.node) ->
        let is_broker = n.Tree.tag = "broker" in
        let is_nasdaq =
          n.Tree.tag = "market"
          && List.exists
               (fun (c : Tree.node) -> Tree.text_of c = "NASDAQ")
               n.Tree.children
        in
        if is_broker || is_nasdaq then Some n.Tree.id else None)
      (Tree.select (fun _ -> true) doc.Tree.root)
  in
  let ft = Fragment.fragmentize doc ~cuts in
  Printf.printf "\nFragment tree (%d fragments):\n%s\n" (Fragment.n_fragments ft)
    (Format.asprintf "%a" Fragment.pp ft);

  (* One site per fragment, coordinator at the root fragment's site. *)
  let cluster = Cluster.one_site_per_fragment ft in

  (* The introduction's Boolean query, via ParBoX: one visit per site. *)
  let bool_q = "//stock/code/text() = \"GOOG\"" in
  let answer, report = Pax_core.Parbox.eval_string cluster bool_q in
  Printf.printf "ParBoX  [%s]  =>  %b   (max %d visit/site, %d control bytes)\n\n"
    bool_q answer report.Cluster.max_visits report.Cluster.control_bytes;

  (* The introduction's data-selecting query Q'. *)
  let show name result =
    let r : Pax_core.Run_result.t = result in
    Printf.printf "%-8s %d answer(s): %s\n" name
      (List.length r.Pax_core.Run_result.answers)
      (String.concat ", "
         (List.map Tree.text_of r.Pax_core.Run_result.answers));
    Printf.printf "         rounds: %s | visits max %d | %d control + %d answer bytes\n"
      (String.concat " -> " r.Pax_core.Run_result.report.Cluster.rounds)
      r.Pax_core.Run_result.report.Cluster.max_visits
      r.Pax_core.Run_result.report.Cluster.control_bytes
      r.Pax_core.Run_result.report.Cluster.answer_bytes
  in
  let q = Query.of_string "//broker[//stock/code/text() = \"GOOG\"]/name" in
  Printf.printf "Query Q' = %s\n" q.Query.source;
  show "PaX3" (Pax_core.Pax3.run cluster q);
  show "PaX2" (Pax_core.Pax2.run cluster q);
  show "PaX2-XA" (Pax_core.Pax2.run ~annotations:true cluster q);
  show "Naive" (Pax_core.Naive.run cluster q);

  (* Example 2.1 of the paper. *)
  let q2 =
    Query.of_string
      "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name"
  in
  Printf.printf "\nQuery (Ex. 2.1) = %s\nnormal form     = %s\n" q2.Query.source
    (Pax_xpath.Normal.to_string q2.Query.normal);
  show "PaX2" (Pax_core.Pax2.run cluster q2)

(* Merged-trace validator, run by `dune build @check`:

     - without arguments, produce a real merged Perfetto file first:
       fork two site servers, run one query over the sockets with
       tracing enabled, harvest every site's span ring, and write the
       multi-process export to a temp file — the same path `pax query
       --connect --trace-out` takes;
     - then schema-check the file *bytes* (not the in-memory value):
       the traceEvents object form, a process_name track per process
       with the coordinator and every site present, well-formed X
       events (no negative timestamp or duration), and flow arrows in
       matched s/f pairs whose endpoints land on real slices — i.e.
       every drawn parent link resolves.

   `validate_trace FILE...` checks existing exports instead of
   generating one.  Exits 1 listing every problem found. *)

module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Sockio = Pax_net.Sockio
module Server = Pax_net.Server
module Client = Pax_net.Client
module Span = Pax_obs.Span
module Sink = Pax_obs.Sink
module Chrome = Pax_obs.Chrome
module Json = Pax_obs.Json

let errors = ref []
let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt

(* ---------------- generation ------------------------------------- *)

let generate_merged_trace path =
  let doc = Pax_xmark.Xmark.doc ~seed:7 ~total_nodes:1500 ~n_sites:4 in
  let ft = Fragment.fragmentize doc ~cuts:(Fragment.cuts_by_tag doc ~tag:"site") in
  let n_sites = 2 in
  let cl = Pax_dist.Placement.cluster_round_robin ft ~n_sites in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pax_validate_trace_%d" (Unix.getpid ()))
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let addrs =
    Array.init n_sites (fun site ->
        Sockio.Unix_path (Filename.concat dir (Printf.sprintf "s%d.sock" site)))
  in
  let pids =
    Array.to_list
      (Array.mapi
         (fun site addr ->
           let frags =
             List.map
               (fun fid -> (fid, (Fragment.fragment ft fid).Fragment.root))
               (Cluster.fragments_on cl site)
           in
           Server.spawn ~addr ~frags ())
         addrs)
  in
  let client = Client.create ~timeout:20. ~addrs () in
  Fun.protect
    ~finally:(fun () ->
      Client.shutdown_sites client;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        pids;
      Array.iter
        (function
          | Sockio.Unix_path p -> ( try Sys.remove p with _ -> ())
          | Sockio.Tcp _ -> ())
        addrs;
      try Sys.rmdir dir with _ -> ())
    (fun () ->
      let sink = Sink.create () in
      Cluster.set_sink cl sink;
      Client.set_sink client sink;
      Cluster.set_transport cl (Some (Client.transport client));
      let q = Pax_xpath.Query.of_string "//person[profile/education]" in
      ignore (Pax_core.Pax2.run cl q : Pax_core.Run_result.t);
      let harvested = List.init n_sites (Client.fetch_spans client) in
      let procs =
        {
          Chrome.pr_name = "coordinator";
          pr_offset = 0.;
          pr_spans = Span.spans sink.Sink.spans;
        }
        :: List.mapi
             (fun site (offset, spans) ->
               {
                 Chrome.pr_name = Printf.sprintf "site S%d" site;
                 pr_offset = offset;
                 pr_spans = spans;
               })
             harvested
      in
      Chrome.write_file_processes path procs;
      List.length procs)

(* ---------------- validation ------------------------------------- *)

let jstr k j = Option.bind (Json.member k j) Json.as_str
let jnum k j = Option.bind (Json.member k j) Json.as_num

let validate ?expect_processes file =
  let contents =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Json.parse contents with
  | Error e -> err "%s: does not parse as JSON: %s" file e
  | Ok j -> (
      match Option.bind (Json.member "traceEvents" j) Json.as_list with
      | None -> err "%s: missing traceEvents array" file
      | Some events ->
          let phase e = Option.value ~default:"" (jstr "ph" e) in
          let procs =
            List.filter_map
              (fun e ->
                if phase e = "M" && jstr "name" e = Some "process_name" then
                  match
                    ( jnum "pid" e,
                      Option.bind (Json.member "args" e) (jstr "name") )
                  with
                  | Some pid, Some name -> Some (pid, name)
                  | _ ->
                      err "%s: process_name metadata without pid or name" file;
                      None
                else None)
              events
          in
          (match expect_processes with
          | Some n when List.length procs <> n ->
              err "%s: expected %d process tracks, found %d" file n
                (List.length procs)
          | _ -> ());
          if not (List.exists (fun (_, n) -> n = "coordinator") procs) then
            err "%s: no coordinator track" file;
          if
            List.length procs > 1
            && not
                 (List.exists
                    (fun (_, n) ->
                      String.length n >= 4 && String.sub n 0 4 = "site")
                    procs)
          then err "%s: merged trace without a site track" file;
          let xs = List.filter (fun e -> phase e = "X") events in
          if xs = [] then err "%s: no slices" file;
          List.iter
            (fun x ->
              let name = Option.value ~default:"?" (jstr "name" x) in
              (match jnum "ts" x with
              | Some ts when ts >= 0. -> ()
              | Some ts -> err "%s: slice %S has negative ts %g" file name ts
              | None -> err "%s: slice %S without ts" file name);
              (match jnum "dur" x with
              | Some d when d >= 0. -> ()
              | Some d -> err "%s: slice %S has negative dur %g" file name d
              | None -> err "%s: slice %S without dur" file name);
              match (jnum "pid" x, jnum "tid" x) with
              | Some pid, Some _ ->
                  if procs <> [] && not (List.mem_assoc pid procs) then
                    err "%s: slice %S on unnamed pid %g" file name pid
              | _ -> err "%s: slice %S without pid/tid" file name)
            xs;
          (* Flow arrows: matched s/f pairs, each endpoint anchored on
             a real slice — the drawn parent links all resolve. *)
          let on_slice e =
            match (jnum "pid" e, jnum "tid" e, jnum "ts" e) with
            | Some pid, Some tid, Some ts ->
                List.exists
                  (fun x ->
                    jnum "pid" x = Some pid
                    && jnum "tid" x = Some tid
                    &&
                    match (jnum "ts" x, jnum "dur" x) with
                    | Some t0, Some d -> ts >= t0 -. 1. && ts <= t0 +. d +. 1.
                    | _ -> false)
                  xs
            | _ -> false
          in
          let flows p = List.filter (fun e -> phase e = p) events in
          let starts = flows "s" and finishes = flows "f" in
          if List.length starts <> List.length finishes then
            err "%s: %d flow starts but %d finishes" file (List.length starts)
              (List.length finishes);
          List.iter
            (fun e ->
              let id = jnum "id" e in
              if id = None then err "%s: flow event without id" file;
              if
                phase e = "s"
                && not
                     (List.exists (fun f -> jnum "id" f = id) finishes)
              then
                err "%s: flow %g has no finish" file
                  (Option.value ~default:Float.nan id);
              if not (on_slice e) then
                err "%s: flow %g endpoint (%s) not anchored on a slice" file
                  (Option.value ~default:Float.nan id)
                  (phase e))
            (starts @ finishes);
          Printf.printf
            "%s: %d process(es), %d slice(s), %d flow arrow(s) — ok so far\n"
            file (List.length procs) (List.length xs) (List.length starts))

let () =
  (match Array.to_list Sys.argv with
  | _ :: (_ :: _ as files) -> List.iter (fun f -> validate f) files
  | _ ->
      let path = Filename.temp_file "pax_merged_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let n = generate_merged_trace path in
          validate ~expect_processes:n path));
  match !errors with
  | [] -> ()
  | es ->
      List.iter (fun e -> Printf.eprintf "validate_trace: %s\n" e) (List.rev es);
      exit 1

(* Documentation checker, run by `dune build @check`:

     - every page under docs/ must be reachable from README.md by
       following relative markdown links;
     - every relative markdown link in the root *.md files and docs/
       must resolve to an existing file or directory;
     - every inline-code reference that looks like a repo path
       (`lib/net/wire.ml`, `bench/throughput.ml`, `docs/SERVING.md:12`)
       must name something that exists — stale paths are how docs rot.

   Fenced code blocks are skipped entirely (they hold shell transcripts
   and example output, not navigation).  Absolute paths, globs and
   `_build/...` artifacts are never treated as repo references.  Runs
   from the repository root; exits 1 listing every problem found. *)

let errors = ref []
let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt

let starts s p =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let ends s suf =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Collapse "." and ".." components so links resolve the way a
   markdown viewer would. *)
let normalize path =
  let rec go acc = function
    | [] -> List.rev acc
    | ("." | "") :: rest -> go acc rest
    | ".." :: rest -> (
        match acc with
        | _ :: tl -> go tl rest
        | [] -> go [ ".." ] rest)
    | p :: rest -> go (p :: acc) rest
  in
  String.concat "/" (go [] (String.split_on_char '/' path))

(* One pass over a markdown file: [(line, target)] for every
   [text](target) link and [(line, code)] for every inline `code`
   span, both outside fenced blocks. *)
let scan_md text =
  let links = ref [] and codes = ref [] in
  let in_fence = ref false in
  List.iteri
    (fun lineno line ->
      let ln = lineno + 1 in
      if starts (String.trim line) "```" then in_fence := not !in_fence
      else if not !in_fence then begin
        let n = String.length line in
        let i = ref 0 in
        while !i < n do
          if line.[!i] = '`' then (
            match String.index_from_opt line (!i + 1) '`' with
            | Some j ->
                codes := (ln, String.sub line (!i + 1) (j - !i - 1)) :: !codes;
                i := j + 1
            | None -> i := n)
          else incr i
        done;
        let i = ref 0 in
        while !i + 1 < n do
          if line.[!i] = ']' && line.[!i + 1] = '(' then (
            match String.index_from_opt line (!i + 2) ')' with
            | Some j ->
                links := (ln, String.sub line (!i + 2) (j - !i - 2)) :: !links;
                i := j + 1
            | None -> i := n)
          else incr i
        done
      end)
    (String.split_on_char '\n' text);
  (List.rev !links, List.rev !codes)

let scans : (string, (int * string) list * (int * string) list) Hashtbl.t =
  Hashtbl.create 16

let scan file =
  match Hashtbl.find_opt scans file with
  | Some r -> r
  | None ->
      let r = scan_md (read_file file) in
      Hashtbl.replace scans file r;
      r

(* "docs/X.md#anchor \"title\"" -> "docs/X.md"; "" for same-page
   anchors. *)
let clean_target t =
  let t = String.trim t in
  let t =
    match String.index_opt t ' ' with
    | Some i -> String.sub t 0 i
    | None -> t
  in
  let t =
    if String.length t >= 2 && t.[0] = '<' && ends t ">" then
      String.sub t 1 (String.length t - 2)
    else t
  in
  match String.index_opt t '#' with
  | Some 0 -> ""
  | Some i -> String.sub t 0 i
  | None -> t

let external_target t = contains t "://" || starts t "mailto:"

(* `lib/net/wire.ml:42` -> `lib/net/wire.ml` *)
let strip_line_suffix tok =
  match String.rindex_opt tok ':' with
  | Some i
    when i + 1 < String.length tok
         && String.for_all
              (fun c -> c >= '0' && c <= '9')
              (String.sub tok (i + 1) (String.length tok - i - 1)) ->
      String.sub tok 0 i
  | _ -> tok

(* Conservative: only slash-bearing tokens rooted in a repo directory
   or carrying a source-file extension count as path references. *)
let looks_like_path tok =
  tok <> ""
  && (not (String.contains tok ' '))
  && String.contains tok '/'
  && (not (String.contains tok '*'))
  && (not (String.contains tok '<'))
  && (not (String.contains tok '$'))
  && (not (String.contains tok '('))
  && (not (String.contains tok '{'))
  && (not (starts tok "http"))
  && (not (starts tok "/"))
  && (not (starts tok "_build"))
  && (not (contains tok "//"))
  && (not (ends tok ".exe"))
  && (List.exists (starts tok)
        [ "lib/"; "bin/"; "test/"; "bench/"; "docs/"; "tools/" ]
     || List.exists (ends tok) [ ".ml"; ".mli"; ".md"; ".json" ])

(* ---------------- the operability contract -------------------------

   Every CLI flag `bin/pax_cli.ml` declares (the quoted names inside
   Cmdliner's [info [ "name"; ... ]] lists) and every PAX_* environment
   variable the sources read must appear in docs/OPERATIONS.md — an
   undocumented knob is an inoperable one, and this check is what keeps
   the reference table honest as flags are added. *)

(* Extract the string-literal lists of [info [ ... ]] occurrences.
   [Cmd.info "name"] takes a bare string, not a list, so requiring the
   next non-blank character to be '[' skips it; positional arguments
   use [info []] and contribute nothing. *)
let cli_flags path =
  let s = read_file path in
  let n = String.length s in
  let word_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  let flags = ref [] in
  let i = ref 0 in
  while !i + 4 <= n do
    if
      String.sub s !i 4 = "info"
      && (!i = 0 || not (word_char s.[!i - 1]))
      && (!i + 4 >= n || not (word_char s.[!i + 4]))
    then begin
      let j = ref (!i + 4) in
      while !j < n && (s.[!j] = ' ' || s.[!j] = '\n' || s.[!j] = '\t') do
        incr j
      done;
      if !j < n && s.[!j] = '[' then begin
        let k = ref (!j + 1) in
        let stop = ref false in
        while (not !stop) && !k < n && s.[!k] <> ']' do
          if s.[!k] = '"' then (
            match String.index_from_opt s (!k + 1) '"' with
            | Some e ->
                flags := String.sub s (!k + 1) (e - !k - 1) :: !flags;
                k := e + 1
            | None -> stop := true)
          else incr k
        done;
        i := !k
      end
      else i := !j
    end
    else incr i
  done;
  List.sort_uniq compare !flags

(* PAX_ followed by an upper-case/digit/underscore run. *)
let env_vars_of s =
  let n = String.length s in
  let vars = ref [] in
  let i = ref 0 in
  while !i + 4 <= n do
    if String.sub s !i 4 = "PAX_" then begin
      let j = ref (!i + 4) in
      while
        !j < n
        && ((s.[!j] >= 'A' && s.[!j] <= 'Z')
           || (s.[!j] >= '0' && s.[!j] <= '9')
           || s.[!j] = '_')
      do
        incr j
      done;
      if !j > !i + 4 then vars := String.sub s !i (!j - !i) :: !vars;
      i := !j
    end
    else incr i
  done;
  !vars

let rec ml_files dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.concat_map (fun f ->
           let p = Filename.concat dir f in
           if Sys.is_directory p then ml_files p
           else if ends f ".ml" || ends f ".mli" then [ p ]
           else [])
  else []

let check_operations () =
  let ops_file = "docs/OPERATIONS.md" in
  if not (Sys.file_exists ops_file) then
    err "%s: missing (the CLI and environment reference lives here)" ops_file
  else begin
    let ops = read_file ops_file in
    let cli = "bin/pax_cli.ml" in
    if Sys.file_exists cli then
      List.iter
        (fun flag ->
          let needle =
            if String.length flag = 1 then Printf.sprintf "`-%s" flag
            else Printf.sprintf "`--%s" flag
          in
          if not (contains ops needle) then
            err "%s: flag --%s from %s is undocumented" ops_file flag cli)
        (cli_flags cli);
    let vars =
      List.concat_map
        (fun p -> env_vars_of (read_file p))
        (List.concat_map ml_files [ "lib"; "bin"; "bench"; "test"; "tools" ])
      |> List.sort_uniq compare
    in
    List.iter
      (fun v ->
        if not (contains ops v) then
          err "%s: environment variable %s is undocumented" ops_file v)
      vars
  end

let md_files_in dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> ends f ".md")
    |> List.map (fun f -> if dir = "." then f else Filename.concat dir f)
    |> List.sort compare
  else []

let () =
  if not (Sys.file_exists "README.md") then (
    prerr_endline "check_docs: run from the repository root (no README.md)";
    exit 2);
  let all_md = md_files_in "." @ md_files_in "docs" in
  (* Reachability: follow relative .md links from README.md. *)
  let visited = Hashtbl.create 16 in
  let queue = Queue.create () in
  Hashtbl.replace visited "README.md" ();
  Queue.add "README.md" queue;
  while not (Queue.is_empty queue) do
    let file = Queue.pop queue in
    if Sys.file_exists file then
      let links, _ = scan file in
      List.iter
        (fun (_, raw) ->
          let t = clean_target raw in
          if t <> "" && not (external_target t) then
            let resolved = normalize (Filename.concat (Filename.dirname file) t) in
            if
              ends resolved ".md"
              && Sys.file_exists resolved
              && not (Hashtbl.mem visited resolved)
            then (
              Hashtbl.replace visited resolved ();
              Queue.add resolved queue))
        links
  done;
  (* Link resolution and code-path references, for every page (broken
     links in an unreachable page are still broken). *)
  List.iter
    (fun file ->
      let links, codes = scan file in
      List.iter
        (fun (ln, raw) ->
          let t = clean_target raw in
          if t <> "" && not (external_target t) then
            let resolved = normalize (Filename.concat (Filename.dirname file) t) in
            if not (Sys.file_exists resolved) then
              err "%s:%d: broken link (%s)" file ln raw)
        links;
      List.iter
        (fun (ln, code) ->
          let tok = strip_line_suffix (String.trim code) in
          if looks_like_path tok && not (Sys.file_exists tok) then
            err "%s:%d: stale code reference `%s`" file ln code)
        codes)
    all_md;
  List.iter
    (fun d ->
      if not (Hashtbl.mem visited d) then
        err "%s: not reachable from README.md" d)
    (md_files_in "docs");
  check_operations ();
  match List.rev !errors with
  | [] -> Printf.printf "check_docs: %d pages OK\n" (List.length all_md)
  | es ->
      List.iter prerr_endline es;
      Printf.eprintf "check_docs: %d problem(s)\n" (List.length es);
      exit 1

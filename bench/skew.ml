(* The hot-shard benchmark (docs/SHARDING.md): a closed-loop Zipf
   workload against a deliberately skewed placement — every FT2
   fragment starts on site 0 of 4, so one server serializes every
   visit of every in-flight run — measured before and after one
   [Pax_serve.Rebalance.run].  The rebalancer reads the visit counters
   the coordinator harvested into the placement table during the "pre"
   phase and live-migrates fragments over the same mux the workload
   uses; the "post" phase then reruns the identical closed loop.

   The machine model matches bench/throughput.ml: shared core, loopback
   sockets, and a slept per-visit service delay standing in for the
   paper's one-machine-per-site network.  The delay is what the skew
   serializes — all visits queue behind one socket pre-rebalance and
   spread over four servers post — so p99 drops even though compute
   shares a core.  Emits BENCH_PR8.json (see validate_bench.ml): the
   committed artifact must show post-rebalance p99 <= pre, at least one
   executed move, a strictly lower max per-site visit load, and every
   audit passing in both phases. *)

module Query = Pax_xpath.Query
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Sockio = Pax_net.Sockio
module Server = Pax_net.Server
module Client = Pax_net.Client
module Coordinator = Pax_serve.Coordinator
module Rebalance = Pax_serve.Rebalance
module Ptable = Pax_shard.Ptable
module Migrate = Pax_shard.Migrate
module J = Bench_json

let cumulative_mb = 13
let n_sites = 4
let concurrency = 8
let total_queries = if Setup.quick then 48 else 160

let site_delay_ms =
  match Sys.getenv_opt "PAX_BENCH_SITE_DELAY_MS" with
  | Some s -> ( match float_of_string_opt s with Some v -> v | None -> 2.)
  | None -> 2.

let queries =
  List.iter (fun (_, q) -> ignore (Query.of_string q)) Pax_xmark.Xmark.queries;
  Pax_xmark.Xmark.queries

(* Zipf(1) over the query set: rank r drawn with weight 1/r.  Each
   closed-loop client draws from its own deterministic stream. *)
let zipf_pick st =
  let qarr = Array.of_list queries in
  let n = Array.length qarr in
  let weights = Array.init n (fun i -> 1. /. float_of_int (i + 1)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let u = Random.State.float st total in
  let rec go i acc =
    if i >= n - 1 then qarr.(n - 1)
    else
      let acc = acc +. weights.(i) in
      if u < acc then qarr.(i) else go (i + 1) acc
  in
  go 0 0.

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

type phase = {
  queries_run : int;
  wall_s : float;
  qps : float;
  p50_ms : float;
  p99_ms : float;
  audit_pass : bool;
}

(* One timed closed loop: [concurrency] clients, each drawing its
   Zipf stream from a per-client, per-round seed so every repeat of a
   phase replays the same request mix.  Audits are checked after the
   clock stops. *)
let run_phase ~round coord : phase =
  let run_one ?source q =
    match Coordinator.run ?source coord q with
    | Ok o -> o
    | Error e ->
        failwith
          (Printf.sprintf "skew: closed-loop client rejected: %s"
             (Coordinator.error_message e))
  in
  let per_client = total_queries / concurrency in
  let queries_run = per_client * concurrency in
  let lat = Array.make queries_run 0. in
  let results = Array.make queries_run None in
  let client i () =
    let source = Printf.sprintf "client%d" i in
    let st = Random.State.make [| 0x21bf; i; round |] in
    for k = 0 to per_client - 1 do
      let _, q = zipf_pick st in
      let s = Unix.gettimeofday () in
      let r = run_one ~source q in
      let slot = (i * per_client) + k in
      lat.(slot) <- Unix.gettimeofday () -. s;
      results.(slot) <- Some r
    done
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init concurrency (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let audit_pass =
    Array.for_all
      (function
        | Some (o : Coordinator.Pe.outcome) -> o.audit.Pax_obs.Audit.pass
        | None -> false)
      results
  in
  Array.sort compare lat;
  {
    queries_run;
    wall_s = wall;
    qps = float_of_int queries_run /. wall;
    p50_ms = 1000. *. percentile lat 50.;
    p99_ms = 1000. *. percentile lat 99.;
    audit_pass;
  }

(* Best-of-repeats on p99 (the closed loop shares the machine with
   whatever else runs); audits must pass in every repeat. *)
let measure_phase ~label coord : phase =
  let best = ref None in
  for r = 1 to Setup.repeats do
    let p = run_phase ~round:r coord in
    let p =
      match !best with
      | Some b when not b.audit_pass -> { p with audit_pass = false }
      | _ -> p
    in
    match !best with
    | Some b when b.p99_ms <= p.p99_ms && b.audit_pass = p.audit_pass -> ()
    | _ -> best := Some p
  done;
  let p = Option.get !best in
  Printf.printf "  %-5s %7.1f qps  p50 %7.2f ms  p99 %7.2f ms  audit %s\n%!"
    label p.qps p.p50_ms p.p99_ms
    (if p.audit_pass then "pass" else "FAIL");
  p

(* ---------------- harness ------------------------------------------ *)

let with_servers ft table f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pax_skew_%d" (Unix.getpid ()))
  in
  Sys.mkdir dir 0o755;
  let addrs =
    Array.init n_sites (fun site ->
        Sockio.Unix_path (Filename.concat dir (Printf.sprintf "s%d.sock" site)))
  in
  let site_frags site =
    List.filter_map
      (fun fid ->
        if Ptable.site_of table fid = site then
          Some (fid, (Fragment.fragment ft fid).Fragment.root)
        else None)
      (List.init (Fragment.n_fragments ft) Fun.id)
  in
  let pids =
    Array.to_list
      (Array.mapi
         (fun site addr ->
           Server.spawn
             ~service_delay:(site_delay_ms /. 1000.)
             ~addr
             ~frags:(site_frags site) ())
         addrs)
  in
  let mux = Client.create ~timeout:60. ~addrs () in
  Fun.protect
    ~finally:(fun () ->
      Client.shutdown_sites mux;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        pids;
      Array.iter
        (fun a ->
          match a with
          | Sockio.Unix_path p -> ( try Sys.remove p with _ -> ())
          | Sockio.Tcp _ -> ())
        addrs;
      try Sys.rmdir dir with _ -> ())
    (fun () -> f mux)

(* ---------------- reporting ---------------------------------------- *)

let json_of_phase p =
  J.Obj
    [
      ("queries", J.int p.queries_run);
      ("wall_s", J.Num p.wall_s);
      ("qps", J.Num p.qps);
      ("p50_ms", J.Num p.p50_ms);
      ("p99_ms", J.Num p.p99_ms);
      ("audit_pass", J.Bool p.audit_pass);
    ]

let json_of_move (o : Migrate.outcome) =
  J.Obj
    [
      ("fid", J.int o.Migrate.mv_fid);
      ("from", J.int o.Migrate.mv_from);
      ("to", J.int o.Migrate.mv_to);
      ("epoch", J.int o.Migrate.mv_epoch);
    ]

let emit ~n_frags ~pre ~post ~moves ~epoch ~max_pre ~max_post =
  let out =
    match Sys.getenv_opt "PAX_BENCH_OUT" with
    | Some p -> p
    | None -> "BENCH_PR8.json"
  in
  let j =
    J.Obj
      [
        ("bench", J.Str "skew");
        ("pr", J.int 8);
        ("workload", J.Str "ft2-zipf");
        ("engine", J.Str "pax2");
        ("transport", J.Str "unix-sockets");
        ("quick", J.Bool Setup.quick);
        ("cores", J.int (Domain.recommended_domain_count ()));
        ("size_mb", J.int cumulative_mb);
        ("site_delay_ms", J.Num site_delay_ms);
        ("scale_nodes_per_mb", J.int Setup.scale);
        ("repeats", J.int Setup.repeats);
        ("total_queries", J.int total_queries);
        ("concurrency", J.int concurrency);
        ("n_frags", J.int n_frags);
        ("n_sites", J.int n_sites);
        ("queries", J.List (List.map (fun (n, _) -> J.Str n) queries));
        ("moves", J.int (List.length moves));
        ("move_list", J.List (List.map json_of_move moves));
        ("epoch", J.int epoch);
        ("max_site_load_pre", J.int max_pre);
        ("max_site_load_post", J.int max_post);
        ("pre", json_of_phase pre);
        ("post", json_of_phase post);
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n%!" out

let main () =
  Printf.printf
    "hot-shard rebalance: FT2 %d units, scale %d nodes/unit, %d Zipf \
     queries per phase at concurrency %d, best of %d, site delay %.1f ms, \
     quick=%b\n%!"
    cumulative_mb Setup.scale total_queries concurrency Setup.repeats
    site_delay_ms Setup.quick;
  let ft = Cluster.ftree (Setup.ft2 ~cumulative_mb) in
  let n_frags = Fragment.n_fragments ft in
  (* The skew: every fragment on site 0; sites 1..3 idle. *)
  let table = Ptable.create ~n_frags ~n_sites ~assign:(fun _ -> 0) () in
  with_servers ft table (fun mux ->
      let coord =
        Coordinator.create ~max_inflight:concurrency
          ~max_queue:((2 * concurrency) + 16)
          (Coordinator.Sockets mux)
          [
            Coordinator.mount ~table
              (Pax_core.Engines.pax2 ft ~n_sites
                 ~assign:(Ptable.assign table));
          ]
      in
      Fun.protect ~finally:(fun () -> Coordinator.close coord) @@ fun () ->
      (* Untimed warm-up, then the measured skewed phase; its harvested
         visit counters are exactly what the rebalancer feeds on. *)
      List.iter
        (fun (_, q) -> ignore (Coordinator.run coord q))
        queries;
      let pre = measure_phase ~label:"pre" coord in
      let loads_pre = Ptable.site_loads table in
      let max_pre = Array.fold_left max 0 loads_pre in
      let rb =
        Rebalance.create
          ~policy:
            { Rebalance.min_gain = 1; cooldown = 0.; max_moves = 2 * n_frags }
          table
      in
      let moves =
        match Rebalance.run ~mux ~ft rb ~now:(Unix.gettimeofday ()) with
        | Ok ms -> ms
        | Error e -> failwith (Printf.sprintf "skew: rebalance failed: %s" e)
      in
      Printf.printf "  rebalance: %d move(s), epoch %d\n%!" (List.length moves)
        (Ptable.epoch table);
      List.iter
        (fun (o : Migrate.outcome) ->
          Printf.printf "    fragment %d: site %d -> %d (epoch %d)\n%!"
            o.Migrate.mv_fid o.Migrate.mv_from o.Migrate.mv_to
            o.Migrate.mv_epoch)
        moves;
      (* Post phase under the rebalanced placement; fresh counters so
         the deterministic load comparison is phase-vs-phase. *)
      Ptable.reset_visits table;
      let post = measure_phase ~label:"post" coord in
      let max_post = Array.fold_left max 0 (Ptable.site_loads table) in
      Printf.printf "  max site load: %d visits pre, %d post\n%!" max_pre
        max_post;
      emit ~n_frags ~pre ~post ~moves ~epoch:(Ptable.epoch table) ~max_pre
        ~max_post)

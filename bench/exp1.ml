(* Experiment 1 (Fig. 9): evaluation time vs. fragmentation, at a
   constant cumulative size of 100 paper-MB over FT1.

   9(a): Q1 (no qualifiers) — PaX3-NA vs PaX3-XA.  Fragmentation helps
         (parallelism); gains flatten after ~6 fragments; annotations
         roughly halve the time by skipping the final stage.
   9(b): Q4 (qualifiers + //) — PaX3-NA vs PaX2-NA.  The combined pass
         of PaX2 beats PaX3's separate passes. *)

let machines () =
  if Setup.quick then [ 1; 2; 4; 6; 8; 10 ] else [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let run_series ~qname ~configs =
  Printf.printf "%-9s" "machines";
  List.iter (fun (c : Setup.config) -> Printf.printf " %12s" c.Setup.cname) configs;
  Printf.printf "   (seconds, parallel; %d answers expected to agree)\n" 0;
  List.iter
    (fun j ->
      let cl = Setup.ft1 ~total_mb:100 ~j in
      let q = Setup.query qname in
      Printf.printf "%-9d" j;
      let answers = ref (-1) in
      List.iter
        (fun cfg ->
          let s = Setup.measure cfg cl q in
          let n = List.length s.Setup.result.Setup.Run_result.answers in
          if !answers >= 0 && n <> !answers then
            failwith "exp1: algorithms disagree";
          answers := n;
          Printf.printf " %12.4f" s.Setup.parallel_s)
        configs;
      Printf.printf "   |ans|=%d\n%!" !answers)
    (machines ())

let run () =
  Setup.header "Experiment 1 (Fig. 9) — evaluation vs fragmentation, 100 MB";
  Setup.section "Fig. 9(a): Q1, PaX3 without vs with XPath-annotations";
  run_series ~qname:"Q1" ~configs:[ Setup.pax3_na; Setup.pax3_xa ];
  Setup.section "Fig. 9(b): Q4, PaX3 vs PaX2 (both without annotations)";
  run_series ~qname:"Q4" ~configs:[ Setup.pax3_na; Setup.pax2_na ]

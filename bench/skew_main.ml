let () = Skew.main ()

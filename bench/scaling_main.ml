(* Standalone entry point for the multicore scaling benchmark:

     dune exec bench/scaling_main.exe            full (280 paper-MB)
     PAX_BENCH_QUICK=1 dune exec ...             smoke scale
     PAX_BENCH_OUT=path ...                      where the JSON goes

   The @bench-smoke alias runs this in quick mode and schema-checks the
   emitted JSON with bench/validate_bench.ml. *)

let () = Scaling.run ()

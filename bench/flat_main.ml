(* Pointer vs flat stage kernels (the PR 7 hot-path claim):

     dune exec bench/flat_main.exe               full sweep
     PAX_BENCH_QUICK=1 dune exec ...             smoke scale
     PAX_BENCH_OUT=path ...                      where the JSON goes
                                                 (default BENCH_PR7.json)

   Each row times one stage loop — the bottom-up qualifier pass, the
   top-down selection pass, PaX2's combined traversal — over the same
   single-fragment XMark document, once through the pointer kernels
   and once through the flat image (Pax_core.Flat_pass), best-of-N
   wall time.  The queries are the relative forms of the XMark
   workload so both sides run the pure in-fragment loop with the root
   as context and no #document wrapper (wrapper handling is pointer
   code on both paths and is covered by the seam tests, not timed
   here).  Outcomes are cross-checked for bit-identity before a row is
   emitted; the flat image build (paid once at load, not per query) is
   reported separately as "flat_build_s".

   The @bench-smoke alias runs this quick and schema-checks the JSON
   with bench/validate_bench.ml; the committed BENCH_PR7.json comes
   from a full run. *)

module Tree = Pax_xml.Tree
module Flat = Pax_xml.Flat
module Query = Pax_xpath.Query
module Fragment = Pax_frag.Fragment
module Formula = Pax_bool.Formula
module Qual_pass = Pax_core.Qual_pass
module Sel_pass = Pax_core.Sel_pass
module Flat_pass = Pax_core.Flat_pass
module J = Bench_json

let quick = Sys.getenv_opt "PAX_BENCH_QUICK" <> None
let out = Option.value (Sys.getenv_opt "PAX_BENCH_OUT") ~default:"BENCH_PR7.json"
let nodes = if quick then 8_000 else 120_000
let repeats = if quick then 3 else 7

(* Relative forms: context at the fragment root, no wrapping. *)
let queries =
  [
    "site/people/person";
    "site/open_auctions//annotation";
    "site/people/person[profile/age > 20 and address/country = \"US\"]/creditcard";
  ]

let time_best f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let t1 = Unix.gettimeofday () in
    if t1 -. t0 < !best then best := t1 -. t0
  done;
  !best

let ids ns = List.map (fun (n : Tree.node) -> n.Tree.id) ns

let () =
  let doc = Pax_xmark.Xmark.doc ~seed:7 ~total_nodes:nodes ~n_sites:4 in
  let root = doc.Tree.root in
  let ft = Fragment.trivial doc in
  (* The store prewarms its images at load, so [Fragment.flat] is a
     cache hit; time a fresh build for the amortized-cost honesty
     line. *)
  let t0 = Unix.gettimeofday () in
  ignore (Flat.of_tree ~intern:(Fragment.intern ft) root : Flat.t);
  let build_s = Unix.gettimeofday () -. t0 in
  let fl = Fragment.flat ft 0 in
  let rows = ref [] in
  let row ~query ~kernel ~pointer_s ~flat_s ~agree =
    Printf.printf "%-10s %-72s pointer %8.4fs  flat %8.4fs  x%.2f%s\n" kernel
      query pointer_s flat_s (pointer_s /. flat_s)
      (if agree then "" else "  DISAGREES");
    rows :=
      J.Obj
        [
          ("query", J.Str query);
          ("kernel", J.Str kernel);
          ("pointer_s", J.Num pointer_s);
          ("flat_s", J.Num flat_s);
          ("speedup", J.Num (pointer_s /. flat_s));
          ("agree", J.Bool agree);
        ]
      :: !rows
  in
  List.iter
    (fun qs ->
      let q = Query.of_string qs in
      let compiled = q.Query.compiled in
      let plan = Flat_pass.make_plan compiled (Fragment.intern ft) in
      (* Qualifier pass (Stage 1 of PaX3). *)
      let qp = Qual_pass.run compiled root in
      let fq = Flat_pass.qual_run plan fl ~is_root:false in
      row ~query:qs ~kernel:"qual"
        ~pointer_s:(time_best (fun () -> Qual_pass.run compiled root))
        ~flat_s:(time_best (fun () -> Flat_pass.qual_run plan fl ~is_root:false))
        ~agree:
          (qp.Qual_pass.ops = fq.Flat_pass.q_ops
          && qp.Qual_pass.root_vec = fq.Flat_pass.q_root_vec);
      (* Selection pass (Stage 2 of PaX3), qualifiers ground. *)
      let init = Sel_pass.blank_init compiled in
      let sat (v : Tree.node) filter =
        Qual_pass.sat compiled
          (Hashtbl.find qp.Qual_pass.vectors v.Tree.id)
          v filter
      in
      let sp =
        Sel_pass.run compiled ~init ~root_is_context:true ~sat root
      in
      let fs = Flat_pass.sel_run plan fl ~init ~is_root:true ~qual:(Some fq) in
      row ~query:qs ~kernel:"sel"
        ~pointer_s:
          (time_best (fun () ->
               Sel_pass.run compiled ~init ~root_is_context:true ~sat root))
        ~flat_s:
          (time_best (fun () ->
               Flat_pass.sel_run plan fl ~init ~is_root:true ~qual:(Some fq)))
        ~agree:
          (sp.Sel_pass.ops = fs.Sel_pass.ops
          && ids sp.Sel_pass.answers = ids fs.Sel_pass.answers
          && List.length sp.Sel_pass.candidates
             = List.length fs.Sel_pass.candidates);
      (* Combined traversal (Stage 1 of PaX2). *)
      let cp =
        Pax_core.Pax2.Combined.run compiled ~init ~root_is_context:true root
      in
      let cf = Flat_pass.combined_run plan fl ~init ~is_root:true in
      row ~query:qs ~kernel:"combined"
        ~pointer_s:
          (time_best (fun () ->
               Pax_core.Pax2.Combined.run compiled ~init ~root_is_context:true
                 root))
        ~flat_s:
          (time_best (fun () -> Flat_pass.combined_run plan fl ~init ~is_root:true))
        ~agree:
          (cp.Pax_core.Pax2.Combined.ops = cf.Flat_pass.ops
          && ids cp.Pax_core.Pax2.Combined.answers = ids cf.Flat_pass.answers
          && cp.Pax_core.Pax2.Combined.root_qvec = cf.Flat_pass.root_qvec))
    queries;
  let json =
    J.Obj
      [
        ("bench", J.Str "flat");
        ("pr", J.int 7);
        ("quick", J.Bool quick);
        ("cores", J.int (Domain.recommended_domain_count ()));
        ("nodes", J.int nodes);
        ("repeats", J.int repeats);
        ("flat_build_s", J.Num build_s);
        ("queries", J.List (List.map (fun q -> J.Str q) queries));
        ("results", J.List (List.rev !rows));
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (flat image build: %.4fs)\n" out build_s

(* Fig. 7 (the query table) and Fig. 8 (the fragment trees), as
   realized by this reproduction. *)

module Query = Pax_xpath.Query
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster

let show_ft label cl =
  let ft = Cluster.ftree cl in
  Setup.section label;
  Printf.printf "%-5s %-8s %-28s %10s %9s\n" "frag" "parent" "annotation" "nodes"
    "~MB";
  Array.iter
    (fun (f : Fragment.fragment) ->
      let nodes = Fragment.fragment_node_count f in
      Printf.printf "%-5s %-8s %-28s %10d %9.1f\n"
        (Printf.sprintf "F%d" f.Fragment.fid)
        (match f.Fragment.parent with
        | Some p -> Printf.sprintf "F%d" p
        | None -> "-")
        (String.concat "/" f.Fragment.ann)
        nodes
        (float_of_int nodes /. float_of_int Setup.scale))
    ft.Fragment.fragments

let run () =
  Setup.header "Fig. 7 — the experiment queries";
  Printf.printf "%-4s %-75s\n" "id" "query / normal form";
  List.iter
    (fun (name, q) ->
      Printf.printf "%-4s %s\n" name q.Query.source;
      Printf.printf "%-4s %s   (|Q| = %d, qualifiers: %b, //: %b)\n" ""
        (Pax_xpath.Normal.to_string q.Query.normal)
        (Query.size q) (Query.has_qualifiers q) (Query.has_dos q))
    Setup.queries;

  Setup.header "Fig. 8 — fragment trees (as realized, with sizes)";
  show_ft "FT1 with 4 fragments, 100 paper-MB total" (Setup.ft1 ~total_mb:100 ~j:4);
  show_ft "FT2 at cumulative 104 paper-MB (the 5/12/28/8 split)"
    (Setup.ft2 ~cumulative_mb:104)

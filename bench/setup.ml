(* Shared benchmark infrastructure: the paper's fragment trees FT1 and
   FT2 (Fig. 8), scaled from "paper megabytes" to tree nodes, and the
   algorithm configurations under test.

   Environment knobs:
     PAX_BENCH_SCALE    nodes per paper-MB (default Xmark.nodes_per_mb)
     PAX_BENCH_REPEATS  timing repetitions, best-of (default 3)
     PAX_BENCH_QUICK    set to shrink sweeps for smoke runs *)

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Xmark = Pax_xmark.Xmark
module Rng = Pax_xmark.Rng
module Run_result = Pax_core.Run_result

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let quick = Sys.getenv_opt "PAX_BENCH_QUICK" <> None
let scale = env_int "PAX_BENCH_SCALE" (if quick then 400 else Xmark.nodes_per_mb)
let repeats = env_int "PAX_BENCH_REPEATS" 3
let mb n = n * scale

(* ---------------- FT1: the flat tree of Experiment 1 --------------- *)

(* [j] fragments of (total/j) MB each; F0 holds the document root and
   the first XMark site, every other site subtree is its own fragment
   on its own machine. *)
let ft1 ~total_mb ~j : Cluster.t =
  let per = mb total_mb / j in
  let doc = Xmark.sites_doc ~seed:(100 + j) ~site_nodes:(List.init j (fun _ -> per)) in
  let sites = Tree.select (fun n -> n.Tree.tag = "site") doc.Tree.root in
  let cuts =
    match sites with
    | [] -> []
    | _first :: rest -> List.map (fun (n : Tree.node) -> n.Tree.id) rest
  in
  let ft = Fragment.fragmentize doc ~cuts in
  Cluster.one_site_per_fragment ft

(* ---------------- FT2: the nested tree of Experiment 2 ------------- *)

(* Ten fragments in the paper's 5/12/28/8 ratio (cumulative 104 units):
     F0 = root + whole site1 (5)        F3 = whole site4 (5)
     F1 = site2 spine (5)  with F4 = regions (12), F6 = open_auctions (12),
                                F9 = closed_auctions (8)
     F2 = site3 spine (5)  with F5 = regions (12), F8 = open_auctions (12),
                                F7 = closed_auctions (28)
   Matches the paper's pruning claims: Q1 touches F0..F3 only; Q2 adds
   the open_auction fragments F6 and F8. *)
let ft2 ~cumulative_mb : Cluster.t =
  let u x = mb cumulative_mb * x / 104 in
  let b = Tree.builder () in
  let rng = Rng.create ~seed:(2000 + cumulative_mb) in
  let plain nodes = Xmark.site b (Rng.split rng) ~nodes in
  let skewed ~closed_u =
    Xmark.site_custom b (Rng.split rng) ~regions:(u 12) ~categories:(u 1)
      ~people:(u 3) ~open_auctions:(u 12) ~closed_auctions:(u closed_u)
  in
  let site1 = plain (u 5) in
  let site2 = skewed ~closed_u:8 in
  let site3 = skewed ~closed_u:28 in
  let site4 = plain (u 5) in
  let root = Tree.elem b "sites" [ site1; site2; site3; site4 ] in
  let doc = Tree.doc_of_root root in
  let section (site : Tree.node) tag =
    match List.find_opt (fun (c : Tree.node) -> c.Tree.tag = tag) site.Tree.children with
    | Some n -> n.Tree.id
    | None -> invalid_arg "ft2: missing section"
  in
  let cuts =
    [
      site2.Tree.id; site3.Tree.id; site4.Tree.id;
      section site2 "regions"; section site2 "open_auctions";
      section site2 "closed_auctions";
      section site3 "regions"; section site3 "open_auctions";
      section site3 "closed_auctions";
    ]
  in
  let ft = Fragment.fragmentize doc ~cuts in
  Cluster.one_site_per_fragment ft

(* ---------------- algorithm configurations ------------------------- *)

type config = { cname : string; run : Cluster.t -> Query.t -> Run_result.t }

let pax3_na = { cname = "PaX3-NA"; run = (fun cl q -> Pax_core.Pax3.run cl q) }

let pax3_xa =
  { cname = "PaX3-XA"; run = (fun cl q -> Pax_core.Pax3.run ~annotations:true cl q) }

let pax2_na = { cname = "PaX2-NA"; run = (fun cl q -> Pax_core.Pax2.run cl q) }

let pax2_xa =
  { cname = "PaX2-XA"; run = (fun cl q -> Pax_core.Pax2.run ~annotations:true cl q) }

let naive = { cname = "Naive"; run = (fun cl q -> Pax_core.Naive.run cl q) }

type sample = {
  parallel_s : float;
  total_s : float;
  result : Run_result.t;
}

(* Best-of-[repeats] wall-clock (generation noise dominates otherwise). *)
let measure (cfg : config) cl q : sample =
  let best = ref None in
  for _ = 1 to repeats do
    let r = cfg.run cl q in
    let rep = r.Run_result.report in
    let p = rep.Cluster.parallel_seconds and t = rep.Cluster.total_seconds in
    match !best with
    | Some (p', _, _) when p' <= p -> ()
    | _ -> best := Some (p, t, r)
  done;
  match !best with
  | Some (p, t, r) -> { parallel_s = p; total_s = t; result = r }
  | None -> assert false

let queries = List.map (fun (n, s) -> (n, Query.of_string s)) Xmark.queries
let query name = List.assoc name queries

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let section title =
  Printf.printf "\n-- %s --\n" title

(* Multicore scaling experiment (PR 2): the same Exp-2 workload — the
   nested FT2 fragment tree, queries Q1-Q4 — run at pool degrees 1, 2,
   4 and 8, measuring {e real} wall-clock next to the {e modelled}
   parallel cost the simulator always reported.

   The paper's bound says per-round work is [max_site |F_site|]-shaped;
   with the Domain pool under [Cluster.run_round] that is now physical:
   on an n-core box the measured wall-clock of the per-site rounds
   should approach the modelled parallel seconds as the degree grows,
   while every deterministic observable (answers, visits, traces) stays
   byte-identical to the sequential run — asserted here on every
   combination.

   Results are printed as a table and emitted as machine-readable JSON
   (default BENCH_PR2.json; override with PAX_BENCH_OUT) whose schema is
   checked by bench/validate_bench.ml under the @bench-smoke alias. *)

module Cluster = Pax_dist.Cluster
module Trace = Pax_dist.Trace
module Run_result = Pax_core.Run_result
module J = Bench_json

let degrees = [ 1; 2; 4; 8 ]
let out_path () = Option.value ~default:"BENCH_PR2.json" (Sys.getenv_opt "PAX_BENCH_OUT")

(* Q1/Q2 exercise PaX3's three stages, Q3/Q4 also make sense under
   PaX2's two; PaX3-NA covers all four and is the paper's headline
   configuration for Exp-2. *)
let config = Setup.pax3_na
let engine = "pax3"

type run_m = {
  m_domains : int;
  m_wall_s : float;  (* full-run wall-clock, best of repeats *)
  m_parallel_s : float;  (* modelled: per-round max over sites + coord *)
  m_total_s : float;  (* modelled: per-round sum over sites + coord *)
  m_result : Run_result.t;
  m_latency : (string * float) list;
      (* telemetry pairs from the final repeat (every engine run
         starts with [Cluster.reset], which clears the sink, so the
         pairs describe exactly one run at this degree) *)
}

let time_run cl q : run_m =
  let best = ref None in
  for _ = 1 to Setup.repeats do
    let t0 = Unix.gettimeofday () in
    let r = config.Setup.run cl q in
    let wall = Unix.gettimeofday () -. t0 in
    match !best with
    | Some (w, _) when w <= wall -> ()
    | _ -> best := Some (wall, r)
  done;
  let wall, r = Option.get !best in
  let rep = r.Run_result.report in
  {
    m_domains = Cluster.domains cl;
    m_wall_s = wall;
    m_parallel_s = rep.Cluster.parallel_seconds;
    m_total_s = rep.Cluster.total_seconds;
    m_result = r;
    m_latency =
      Pax_obs.Metrics.pairs (Cluster.sink cl).Pax_obs.Sink.metrics;
  }

(* The equivalence assertions of the acceptance criterion: identical
   answers, visit counts and logical traces at every degree. *)
let assert_equivalent ~qname (seq : run_m) (par : run_m) =
  let fail what =
    failwith
      (Printf.sprintf "scaling: %s differs between domains:1 and domains:%d on %s"
         what par.m_domains qname)
  in
  if
    par.m_result.Run_result.answer_ids <> seq.m_result.Run_result.answer_ids
  then fail "answers";
  if
    par.m_result.Run_result.report.Cluster.visits
    <> seq.m_result.Run_result.report.Cluster.visits
  then fail "visit counts";
  if
    Trace.events (Run_result.trace_exn par.m_result)
    <> Trace.events (Run_result.trace_exn seq.m_result)
  then fail "traces"

type qrow = {
  q_name : string;
  runs : run_m list;
  q_audit : Pax_obs.Audit.report;
}

let sweep_query ~size_mb qname : qrow =
  let cl = Setup.ft2 ~cumulative_mb:size_mb in
  Cluster.set_sink cl (Pax_obs.Sink.create ());
  let q = Setup.query qname in
  let runs =
    List.map
      (fun d ->
        Cluster.set_domains cl d;
        time_run cl q)
      degrees
  in
  (match runs with
  | seq :: rest -> List.iter (fun r -> assert_equivalent ~qname seq r) rest
  | [] -> ());
  runs |> List.iter (fun r -> ignore r.m_wall_s);
  let q_audit =
    Pax_core.Guarantee.audit ~engine ~ftree:(Cluster.ftree cl)
      (List.hd runs).m_result
  in
  if not q_audit.Pax_obs.Audit.pass then
    failwith
      (Printf.sprintf "scaling: guarantee audit FAILED on %s (%s)" qname
         (Format.asprintf "%a" Pax_obs.Audit.pp q_audit));
  { q_name = qname; runs; q_audit }

let speedup ~(seq : run_m) (r : run_m) =
  if r.m_wall_s > 0. then seq.m_wall_s /. r.m_wall_s else 1.

let print_row (row : qrow) =
  let seq = List.hd row.runs in
  Setup.section (Printf.sprintf "%s (%s)" row.q_name config.Setup.cname);
  Printf.printf "%-8s %12s %12s %12s %10s\n" "domains" "wall s"
    "parallel s" "total s" "speedup";
  List.iter
    (fun r ->
      Printf.printf "%-8d %12.4f %12.4f %12.4f %9.2fx\n" r.m_domains
        r.m_wall_s r.m_parallel_s r.m_total_s (speedup ~seq r))
    row.runs

(* The sink's pax_round_seconds histogram for one run, re-shaped for
   the artifact: cumulative buckets in ascending le order plus sum and
   count.  Pairs come flattened from {!Pax_obs.Metrics.pairs} as
   [name_bucket{le="..."}] entries. *)
let latency_json (pairs : (string * float) list) : J.t =
  let pre = "pax_round_seconds_bucket{le=\"" in
  let npre = String.length pre in
  let buckets =
    List.filter_map
      (fun (name, v) ->
        if String.length name > npre + 2 && String.sub name 0 npre = pre then
          let le = String.sub name npre (String.length name - npre - 2) in
          let le_num =
            if le = "+Inf" then infinity else float_of_string le
          in
          Some (le_num, le, v)
        else None)
      pairs
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let find k = Option.value ~default:0. (List.assoc_opt k pairs) in
  J.Obj
    [
      ( "buckets",
        J.List
          (List.map
             (fun (_, le, v) ->
               J.Obj [ ("le", J.Str le); ("count", J.Num v) ])
             buckets) );
      ("sum", J.Num (find "pax_round_seconds_sum"));
      ("count", J.Num (find "pax_round_seconds_count"));
    ]

let audit_json (a : Pax_obs.Audit.report) : J.t =
  J.Obj
    [
      ("pass", J.Bool a.Pax_obs.Audit.pass);
      ( "bounds",
        J.List
          (List.map
             (fun (b : Pax_obs.Audit.bound) ->
               J.Obj
                 [
                   ("name", J.Str b.b_name);
                   ("formula", J.Str b.b_formula);
                   ("actual", J.Num b.b_actual);
                   ("limit", J.Num b.b_limit);
                   ("pass", J.Bool b.b_pass);
                   ("margin", J.Num b.b_margin);
                 ])
             a.Pax_obs.Audit.bounds) );
    ]

let json ~size_mb (rows : qrow list) : J.t =
  let cores = Domain.recommended_domain_count () in
  let run_json ~seq r =
    J.Obj
      [
        ("domains", J.int r.m_domains);
        (* Honesty flag: this run asked for more domains than the
           machine has cores, so its wall-clock is contention-bound and
           must not be read as algorithmic scaling. *)
        ("oversubscribed", J.Bool (r.m_domains > cores));
        ("wall_s", J.Num r.m_wall_s);
        ("parallel_s", J.Num r.m_parallel_s);
        ("total_s", J.Num r.m_total_s);
        ("speedup", J.Num (speedup ~seq r));
        ("round_latency_s", latency_json r.m_latency);
      ]
  in
  let row_json (row : qrow) =
    let seq = List.hd row.runs in
    J.Obj
      [
        ("query", J.Str row.q_name);
        ("config", J.Str config.Setup.cname);
        ( "answers",
          J.int (List.length (List.hd row.runs).m_result.Run_result.answers) );
        ("audit", audit_json row.q_audit);
        ("runs", J.List (List.map (run_json ~seq) row.runs));
      ]
  in
  J.Obj
    [
      ("bench", J.Str "scaling");
      ("pr", J.int 2);
      ("workload", J.Str "exp2-ft2");
      ("quick", J.Bool Setup.quick);
      ("cores", J.int (Domain.recommended_domain_count ()));
      ("size_mb", J.int size_mb);
      ("repeats", J.int Setup.repeats);
      ("domains_tested", J.List (List.map J.int degrees));
      ("results", J.List (List.map row_json rows));
    ]

let run () =
  let size_mb = if Setup.quick then 100 else 280 in
  Setup.header
    (Printf.sprintf
       "Scaling — real multicore wall-clock vs modelled parallel cost \
        (FT2, %d paper-MB, %d core(s))"
       size_mb
       (Domain.recommended_domain_count ()));
  let rows = List.map (sweep_query ~size_mb) [ "Q1"; "Q2"; "Q3"; "Q4" ] in
  List.iter print_row rows;
  let path = out_path () in
  let oc = open_out path in
  output_string oc (J.to_string (json ~size_mb rows));
  close_out oc;
  Printf.printf "\nwrote %s\n" path

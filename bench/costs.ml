(* Ablation tables beyond the paper's figures: the §3.4 cost claims,
   measured.

   (1) Visits / traffic per algorithm (the ≤3 / ≤2 / answers-only
       guarantees) on FT1 with 10 machines.
   (2) Communication vs document size: control bytes depend on |Q| and
       |FT| only; answer bytes track |ans| (the O(|Q||FT| + |ans|)
       optimality claim).
   (3) The paging use case (§1/§8): swap-ins for partial evaluation vs
       a conventional two-pass evaluator. *)

module Cluster = Pax_dist.Cluster
module Run_result = Pax_core.Run_result

let visits_table () =
  Setup.section "visits and traffic per algorithm (FT1, 10 machines, 100 MB)";
  let cl = Setup.ft1 ~total_mb:100 ~j:10 in
  Printf.printf "%-4s %-9s %7s %7s %12s %12s %12s\n" "Q" "algo" "visits"
    "rounds" "control B" "answer B" "tree B";
  List.iter
    (fun (qname, q) ->
      List.iter
        (fun (cfg : Setup.config) ->
          let r = cfg.Setup.run cl q in
          let rep = r.Run_result.report in
          Printf.printf "%-4s %-9s %7d %7d %12d %12d %12d\n" qname
            cfg.Setup.cname rep.Cluster.max_visits
            (List.length rep.Cluster.rounds)
            rep.Cluster.control_bytes rep.Cluster.answer_bytes
            rep.Cluster.tree_bytes)
        [ Setup.pax3_na; Setup.pax3_xa; Setup.pax2_na; Setup.pax2_xa; Setup.naive ];
      print_newline ())
    Setup.queries

let traffic_scaling () =
  Setup.section
    "communication vs data size (Q3, PaX2-NA, FT1 x10): control flat, answers track |ans|";
  Printf.printf "%-8s %10s %12s %12s %10s\n" "MB" "|ans|" "control B" "answer B"
    "tree B";
  List.iter
    (fun size ->
      let cl = Setup.ft1 ~total_mb:size ~j:10 in
      let r = Setup.pax2_na.Setup.run cl (Setup.query "Q3") in
      let rep = r.Run_result.report in
      Printf.printf "%-8d %10d %12d %12d %10d\n" size
        (List.length r.Run_result.answers)
        rep.Cluster.control_bytes rep.Cluster.answer_bytes rep.Cluster.tree_bytes)
    (if Setup.quick then [ 50; 100; 200 ] else [ 25; 50; 100; 200; 400 ])

let paging_table () =
  Setup.section "paging a large document (memory = 10 MB of nodes)";
  let doc_nodes = Setup.mb 100 in
  let doc =
    Pax_xmark.Xmark.doc ~seed:77 ~total_nodes:doc_nodes ~n_sites:4
  in
  let budget = Setup.mb 10 in
  Printf.printf "%-4s %10s | %7s %9s | %7s %9s   (partial eval vs two-pass)\n" "Q"
    "|ans|" "swaps" "MB paged" "swaps" "MB paged";
  List.iter
    (fun (qname, q) ->
      let pe = Pax_core.Paging.run ~memory_budget:budget q doc in
      let tp = Pax_core.Paging.run_two_pass ~memory_budget:budget q doc in
      assert (pe.Pax_core.Paging.answer_ids = tp.Pax_core.Paging.answer_ids);
      Printf.printf "%-4s %10d | %7d %9.2f | %7d %9.2f\n" qname
        (List.length pe.Pax_core.Paging.answer_ids)
        pe.Pax_core.Paging.swap_ins
        (float_of_int pe.Pax_core.Paging.bytes_loaded /. 1e6)
        tp.Pax_core.Paging.swap_ins
        (float_of_int tp.Pax_core.Paging.bytes_loaded /. 1e6))
    Setup.queries

let batch_table () =
  Setup.section "batched evaluation: Q1-Q4 together vs one at a time";
  let cl = Setup.ft1 ~total_mb:100 ~j:10 in
  let qs = List.map snd Setup.queries in
  let solo_visits, solo_control =
    List.fold_left
      (fun (v, b) q ->
        let r = Setup.pax2_na.Setup.run cl q in
        let rep = r.Run_result.report in
        (v + rep.Cluster.max_visits, b + rep.Cluster.control_bytes))
      (0, 0) qs
  in
  let batch = Pax_core.Batch.run cl qs in
  Printf.printf "%-22s %14s %14s\n" "" "visits (max)" "control bytes";
  Printf.printf "%-22s %14d %14d\n" "4 solo PaX2 runs" solo_visits solo_control;
  Printf.printf "%-22s %14d %14d\n" "1 batched run"
    batch.Pax_core.Batch.report.Cluster.max_visits
    batch.Pax_core.Batch.report.Cluster.control_bytes

let placement_table () =
  Setup.section
    "placement ablation: skewed fragments on 4 machines (Q3, PaX2-NA)";
  (* Site subtrees of very different sizes: naive placement lands the
     two big ones on the same machine. *)
  let doc =
    Pax_xmark.Xmark.sites_doc ~seed:31
      ~site_nodes:
        (List.map Setup.mb [ 30; 5; 25; 4; 20; 3; 8; 5 ])
  in
  let ft =
    Pax_frag.Fragment.fragmentize doc
      ~cuts:(Pax_frag.Fragment.cuts_by_tag doc ~tag:"site")
  in
  Printf.printf "%-14s %10s %14s %16s\n" "placement" "sites" "max load (B)"
    "parallel (s)";
  List.iter
    (fun (name, cl, assign) ->
      let loads = Pax_dist.Placement.loads ft ~n_sites:4 assign in
      let s = Setup.measure Setup.pax2_na cl (Setup.query "Q3") in
      Printf.printf "%-14s %10d %14d %16.4f\n" name 4
        (Array.fold_left max 0 loads)
        s.Setup.parallel_s)
    [
      ( "round-robin",
        Pax_dist.Placement.cluster_round_robin ft ~n_sites:4,
        Pax_dist.Placement.round_robin ~n_sites:4 );
      ( "balanced",
        Pax_dist.Placement.cluster_balanced ft ~n_sites:4,
        Pax_dist.Placement.balanced ft ~n_sites:4 );
    ]

let run () =
  Setup.header "Cost accounting — the §3.4 guarantees, measured";
  visits_table ();
  traffic_scaling ();
  paging_table ();
  batch_table ();
  placement_table ()

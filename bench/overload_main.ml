let () = Overload.main ()

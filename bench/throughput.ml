(* Closed-loop serving throughput (docs/SERVING.md): N client threads
   drive the Fig. 7 queries through a socket-backed
   [Pax_serve.Coordinator] over the paper's FT2 fragment tree
   (Experiment 2's workload), each submitting its next query the moment
   the previous one returns.  Reports queries/sec and p50/p99 latency
   at concurrency 1/4/16 with the cross-query cache off and on, audits
   every single run against the paper's guarantees, and emits
   BENCH_PR5.json (see validate_bench.ml for the schema).

   The machine model, recorded in the artifact: everything here shares
   one core, and loopback sockets have no network latency, so a purely
   CPU-bound run would show flat throughput in the concurrency — there
   is nothing to overlap.  The paper's setting is one machine per site
   with a network in between, and that is what concurrent serving
   overlaps: each site server simulates it with a per-visit service
   delay ([Server.spawn ~service_delay], PAX_BENCH_SITE_DELAY_MS
   below).  The delay is slept, not computed, so delays at different
   sites — and queued requests of different in-flight runs — overlap in
   wall clock while compute keeps the core busy.  Concurrency-1 pays
   every round's latency serially; concurrency-16 hides it. *)

module Query = Pax_xpath.Query
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Sockio = Pax_net.Sockio
module Server = Pax_net.Server
module Client = Pax_net.Client
module Coordinator = Pax_serve.Coordinator
module Cache = Pax_serve.Cache
module Sched = Pax_serve.Sched
module J = Bench_json

(* A smaller FT2 than Experiment 2's 104 units: a serving workload is
   many small queries, and per-query serving overhead (what concurrency
   amortizes) should be a visible fraction of the wall clock. *)
let cumulative_mb = 13
let total_queries = if Setup.quick then 48 else 192
let concurrencies = [ 1; 4; 16 ]

(* Simulated per-visit site service latency, in milliseconds (see the
   header comment).  2ms is LAN-ish; PAX_BENCH_SITE_DELAY_MS=0 gives
   the degenerate shared-core model. *)
let site_delay_ms =
  match Sys.getenv_opt "PAX_BENCH_SITE_DELAY_MS" with
  | Some s -> ( match float_of_string_opt s with Some v -> v | None -> 2.)
  | None -> 2.

(* Query text goes straight to the engine-blind coordinator; parse
   errors would come back as [Bad_query].  Compile once up front anyway
   to fail fast on a typo in the workload table. *)
let queries =
  List.iter (fun (_, q) -> ignore (Query.of_string q)) Pax_xmark.Xmark.queries;
  Pax_xmark.Xmark.queries

(* Nearest-rank percentile over an ascending-sorted array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

type combo = {
  concurrency : int;
  cached : bool;
  queries_run : int;
  wall_s : float;
  qps : float;
  p50_ms : float;
  p99_ms : float;
  audit_pass : bool;
}

(* One timed closed-loop run: [concurrency] clients, [total_queries]
   split evenly, each client cycling through the query set from its own
   offset.  An untimed pass of the full query set first brings the
   coordinator (and, when enabled, the cache) to steady state.  Audits
   run after the clock stops so measurement isn't charged for them. *)
let run_combo ~mk_coord ~concurrency ~cached : combo =
  let coord = mk_coord ~cached ~max_inflight:concurrency () in
  Fun.protect ~finally:(fun () -> Coordinator.close coord) @@ fun () ->
  let run_one ?source q =
    match Coordinator.run ?source coord q with
    | Ok o -> o
    | Error e ->
        failwith
          (Printf.sprintf "throughput: closed-loop client rejected: %s"
             (Coordinator.error_message e))
  in
  List.iter (fun (_, q) -> ignore (run_one q)) queries;
  let per_client = total_queries / concurrency in
  let queries_run = per_client * concurrency in
  let lat = Array.make queries_run 0. in
  let results = Array.make queries_run None in
  let qarr = Array.of_list queries in
  let nq = Array.length qarr in
  let client i () =
    let source = Printf.sprintf "client%d" i in
    for k = 0 to per_client - 1 do
      let _, q = qarr.((i + k) mod nq) in
      let s = Unix.gettimeofday () in
      let r = run_one ~source q in
      let slot = (i * per_client) + k in
      lat.(slot) <- Unix.gettimeofday () -. s;
      results.(slot) <- Some r
    done
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init concurrency (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let audit_pass =
    Array.for_all
      (function
        | Some (o : Coordinator.Pe.outcome) -> o.audit.Pax_obs.Audit.pass
        | None -> false)
      results
  in
  Array.sort compare lat;
  {
    concurrency;
    cached;
    queries_run;
    wall_s = wall;
    qps = float_of_int queries_run /. wall;
    p50_ms = 1000. *. percentile lat 50.;
    p99_ms = 1000. *. percentile lat 99.;
    audit_pass;
  }

(* Best-of-repeats on qps (closed-loop wall clock is at the mercy of
   whatever else the machine is doing); audits must pass in every
   repeat, not just the reported one. *)
let measure_combo ~mk_coord ~concurrency ~cached : combo =
  let best = ref None in
  for _ = 1 to Setup.repeats do
    let c = run_combo ~mk_coord ~concurrency ~cached in
    let c =
      match !best with
      | Some b when not b.audit_pass -> { c with audit_pass = false }
      | _ -> c
    in
    match !best with
    | Some b when b.qps >= c.qps && b.audit_pass = c.audit_pass -> ()
    | _ -> best := Some c
  done;
  Option.get !best

(* ---------------- site-server harness ------------------------------ *)

(* Fork one real socket server per FT2 site (one site per fragment, as
   in Experiment 2) and build coordinators over a shared mux. *)
let with_servers (proto : Cluster.t) f =
  let ft = Cluster.ftree proto in
  let n_sites = Cluster.n_sites proto in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pax_throughput_%d" (Unix.getpid ()))
  in
  Sys.mkdir dir 0o755;
  let addrs =
    Array.init n_sites (fun site ->
        Sockio.Unix_path (Filename.concat dir (Printf.sprintf "s%d.sock" site)))
  in
  let site_frags site =
    List.map
      (fun fid -> (fid, (Fragment.fragment ft fid).Fragment.root))
      (Cluster.fragments_on proto site)
  in
  let pids =
    Array.to_list
      (Array.mapi
         (fun site addr ->
           Server.spawn
             ~service_delay:(site_delay_ms /. 1000.)
             ~addr
             ~frags:(site_frags site) ())
         addrs)
  in
  let mux = Client.create ~timeout:60. ~addrs () in
  Fun.protect
    ~finally:(fun () ->
      Client.shutdown_sites mux;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        pids;
      Array.iter
        (fun a ->
          match a with
          | Sockio.Unix_path p -> ( try Sys.remove p with _ -> ())
          | Sockio.Tcp _ -> ())
        addrs;
      try Sys.rmdir dir with _ -> ())
    (fun () ->
      let mk_coord ~cached ~max_inflight () =
        let cache = if cached then Some (Cache.create ft) else None in
        Coordinator.create ~max_inflight
          ~max_queue:((2 * max_inflight) + 16)
          ?cache (Coordinator.Sockets mux)
          [
            Coordinator.mount
              (Pax_core.Engines.pax2 ft ~n_sites
                 ~assign:(fun fid -> Cluster.site_of proto fid));
          ]
      in
      f ~mk_coord)

(* ---------------- reporting ---------------------------------------- *)

let json_of_combo c =
  J.Obj
    [
      ("concurrency", J.int c.concurrency);
      ("cache", J.Bool c.cached);
      ("queries", J.int c.queries_run);
      ("wall_s", J.Num c.wall_s);
      ("qps", J.Num c.qps);
      ("p50_ms", J.Num c.p50_ms);
      ("p99_ms", J.Num c.p99_ms);
      ("audit_pass", J.Bool c.audit_pass);
    ]

let emit combos =
  let out =
    match Sys.getenv_opt "PAX_BENCH_OUT" with
    | Some p -> p
    | None -> "BENCH_PR5.json"
  in
  let j =
    J.Obj
      [
        ("bench", J.Str "throughput");
        ("pr", J.int 5);
        ("workload", J.Str "ft2-exp2");
        ("engine", J.Str "pax2");
        ("transport", J.Str "unix-sockets");
        ("quick", J.Bool Setup.quick);
        ("cores", J.int (Domain.recommended_domain_count ()));
        ("size_mb", J.int cumulative_mb);
        ("site_delay_ms", J.Num site_delay_ms);
        ("scale_nodes_per_mb", J.int Setup.scale);
        ("repeats", J.int Setup.repeats);
        ("total_queries", J.int total_queries);
        ("queries", J.List (List.map (fun (n, _) -> J.Str n) queries));
        ("results", J.List (List.map json_of_combo combos));
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n%!" out

let print_table combos =
  Printf.printf "\n%-6s %-6s %10s %10s %10s %10s %7s\n" "conc" "cache"
    "qps" "wall_s" "p50_ms" "p99_ms" "audit";
  List.iter
    (fun c ->
      Printf.printf "%-6d %-6s %10.1f %10.2f %10.2f %10.2f %7s\n" c.concurrency
        (if c.cached then "on" else "off")
        c.qps c.wall_s c.p50_ms c.p99_ms
        (if c.audit_pass then "pass" else "FAIL"))
    combos

let main () =
  Printf.printf
    "serving throughput: FT2 %d units, scale %d nodes/unit, %d queries \
     per run, best of %d, site delay %.1f ms, quick=%b\n%!"
    cumulative_mb Setup.scale total_queries Setup.repeats site_delay_ms
    Setup.quick;
  let proto = Setup.ft2 ~cumulative_mb in
  let combos =
    with_servers proto (fun ~mk_coord ->
        List.concat_map
          (fun cached ->
            List.map
              (fun concurrency ->
                let c = measure_combo ~mk_coord ~concurrency ~cached in
                Printf.printf
                  "  conc=%-2d cache=%-3s  %7.1f qps  p50 %6.2f ms  p99 %6.2f \
                   ms  audit %s\n%!"
                  c.concurrency
                  (if cached then "on" else "off")
                  c.qps c.p50_ms c.p99_ms
                  (if c.audit_pass then "pass" else "FAIL");
                c)
              concurrencies)
          [ false; true ])
  in
  print_table combos;
  emit combos

let () = Throughput.main ()

(* Bechamel micro-benchmarks of the evaluation kernels: the bottom-up
   qualifier pass, the top-down selection pass, PaX2's combined
   traversal, query compilation and formula operations. *)

open Bechamel
open Toolkit

module Tree = Pax_xml.Tree
module Query = Pax_xpath.Query
module Formula = Pax_bool.Formula
module Var = Pax_bool.Var

let doc = Pax_xmark.Xmark.doc ~seed:5 ~total_nodes:8_000 ~n_sites:1
let q3 = Query.of_string Pax_xmark.Xmark.q3
let compiled = q3.Query.compiled

let ground_sat =
  let qp = Pax_core.Qual_pass.run compiled doc.Tree.root in
  fun (v : Tree.node) filter ->
    Pax_core.Qual_pass.sat compiled
      (Hashtbl.find qp.Pax_core.Qual_pass.vectors v.Tree.id)
      v filter

let q1 = Query.of_string Pax_xmark.Xmark.q1
let sj_index = Pax_core.Struct_join.build doc.Tree.root

(* The flat image and plan, built once as a store does at load; the
   flat sel/combined rows run with [is_root:true], which for the
   absolute Q3 adds the one-node #document wrapper — noise at 8k
   nodes, same shape as the engines' fragment-0 stage. *)
let ft = Pax_frag.Fragment.trivial doc
let fl = Pax_frag.Fragment.flat ft 0
let fplan = Pax_core.Flat_pass.make_plan compiled (Pax_frag.Fragment.intern ft)
let fq = Pax_core.Flat_pass.qual_run fplan fl ~is_root:false

let residual =
  Formula.or_
    (List.init 8 (fun i ->
         Formula.conj
           (Formula.var (Var.Qual (i, 0)))
           (Formula.not_ (Formula.var (Var.Sel_ctx (i, 1))))))

let tests =
  Test.make_grouped ~name:"kernels"
    [
      Test.make ~name:"qualifier-pass (8k nodes)"
        (Staged.stage (fun () -> Pax_core.Qual_pass.run compiled doc.Tree.root));
      Test.make ~name:"qualifier-pass flat (8k nodes)"
        (Staged.stage (fun () ->
             Pax_core.Flat_pass.qual_run fplan fl ~is_root:false));
      Test.make ~name:"selection-pass (8k nodes)"
        (Staged.stage (fun () ->
             Pax_core.Sel_pass.run compiled
               ~init:(Pax_core.Sel_pass.blank_init compiled)
               ~root_is_context:true ~sat:ground_sat doc.Tree.root));
      Test.make ~name:"selection-pass flat (8k nodes)"
        (Staged.stage (fun () ->
             Pax_core.Flat_pass.sel_run fplan fl
               ~init:(Pax_core.Sel_pass.blank_init compiled)
               ~is_root:true ~qual:(Some fq)));
      Test.make ~name:"combined-pass (8k nodes)"
        (Staged.stage (fun () ->
             Pax_core.Pax2.Combined.run compiled
               ~init:(Pax_core.Sel_pass.blank_init compiled)
               ~root_is_context:true doc.Tree.root));
      Test.make ~name:"combined-pass flat (8k nodes)"
        (Staged.stage (fun () ->
             Pax_core.Flat_pass.combined_run fplan fl
               ~init:(Pax_core.Sel_pass.blank_init compiled)
               ~is_root:true));
      Test.make ~name:"centralized Q3 (8k nodes)"
        (Staged.stage (fun () -> Pax_core.Centralized.run q3 doc.Tree.root));
      (let xml = Pax_xml.Printer.to_string doc.Tree.root in
       Test.make ~name:"streaming Q3 (8k nodes, incl. scan)"
         (Staged.stage (fun () -> Pax_core.Stream_eval.over_string q3 xml)));
      Test.make ~name:"centralized Q1 (8k nodes)"
        (Staged.stage (fun () -> Pax_core.Centralized.run q1 doc.Tree.root));
      Test.make ~name:"struct-join Q1 (8k nodes, shared index)"
        (Staged.stage (fun () -> Pax_core.Struct_join.run sj_index q1));
      Test.make ~name:"query compile (Q3)"
        (Staged.stage (fun () -> Query.of_string Pax_xmark.Xmark.q3));
      Test.make ~name:"formula subst (8-way residual)"
        (Staged.stage (fun () ->
             Formula.subst
               (fun v ->
                 match v with
                 | Var.Qual (i, _) -> Some (Formula.bool (i mod 2 = 0))
                 | Var.Sel_ctx _ | Var.Qual_at _ -> None)
               residual));
    ]

let run () =
  Setup.header "Micro-benchmarks (Bechamel, monotonic clock)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if Setup.quick then 0.25 else 1.0))
      ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  Printf.printf "%-42s %15s\n" "kernel" "ns/run";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-42s %15.0f\n" name est
      | Some _ | None -> Printf.printf "%-42s %15s\n" name "-")
    (List.sort compare rows)

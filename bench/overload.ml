(* Closed-loop overload benchmark (docs/SERVING.md, docs/OPERATIONS.md):
   what the serving tier does when offered load far exceeds capacity.

   Three phases over the FT2 fragment tree and forked site servers:

   1. Saturation: [max_inflight] closed-loop clients, no deadlines —
      the goodput ceiling the worker pool can sustain (sat_qps).
   2. Overload: [overload_clients] (>= 64 in full runs) closed-loop
      clients against the same pool, split into a gold class (QoS
      weight 4, priority 1, loose 5s deadlines) and a bronze class
      (default share, tight deadlines).  Excess work must be shed at
      admission — typed Overloaded / Deadline_infeasible rejections,
      counted per reason — while the goodput of admitted queries stays
      within 10% of saturation and every admitted run passes its
      audit.  Shedding instead of collapsing is the claim: a serving
      tier with no admission control would queue without bound and
      watch every latency explode.
   3. Identity: the same query list through one sequential coordinator
      and through two coordinators taking turns over shared servers —
      answers must be bit-identical.  Halfway through, a fragment
      migrates and the first coordinator is killed and restarted from
      its placement snapshot ([Ptable.load] + [Migrate.replay]); the
      remaining queries must still match (restart_recovered).

   Emits BENCH_PR10.json (see validate_bench.ml, "overload"). *)

module Query = Pax_xpath.Query
module Fragment = Pax_frag.Fragment
module Cluster = Pax_dist.Cluster
module Sockio = Pax_net.Sockio
module Server = Pax_net.Server
module Client = Pax_net.Client
module Coordinator = Pax_serve.Coordinator
module Sched = Pax_serve.Sched
module Ptable = Pax_shard.Ptable
module Migrate = Pax_shard.Migrate
module J = Bench_json

let cumulative_mb = 13
let max_inflight = 8
let max_queue = 16
let overload_clients = if Setup.quick then 16 else 64
let per_client = if Setup.quick then 4 else 8
let sat_queries = if Setup.quick then 48 else 192

(* Deadlines, in seconds.  Bronze's tight deadline sits below a warm
   query's predicted cost under backlog, so the calibrated admission
   estimate sheds it up front; gold's loose one only loses to a full
   queue. *)
let tight_deadline_s = 0.025
let loose_deadline_s = 5.

(* Shed clients back off briefly before their next attempt — the
   protocol's BUSY contract — so rejection spin doesn't steal the one
   shared core from the workers actually serving admitted queries. *)
let shed_backoff_s = 0.05

let site_delay_ms =
  match Sys.getenv_opt "PAX_BENCH_SITE_DELAY_MS" with
  | Some s -> ( match float_of_string_opt s with Some v -> v | None -> 2.)
  | None -> 2.

let queries =
  List.iter (fun (_, q) -> ignore (Query.of_string q)) Pax_xmark.Xmark.queries;
  Pax_xmark.Xmark.queries

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

(* ---------------- site-server harness ------------------------------ *)

let with_servers (proto : Cluster.t) f =
  let ft = Cluster.ftree proto in
  let n_sites = Cluster.n_sites proto in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pax_overload_%d" (Unix.getpid ()))
  in
  Sys.mkdir dir 0o755;
  let addrs =
    Array.init n_sites (fun site ->
        Sockio.Unix_path (Filename.concat dir (Printf.sprintf "s%d.sock" site)))
  in
  let site_frags site =
    List.map
      (fun fid -> (fid, (Fragment.fragment ft fid).Fragment.root))
      (Cluster.fragments_on proto site)
  in
  let pids =
    Array.to_list
      (Array.mapi
         (fun site addr ->
           Server.spawn
             ~service_delay:(site_delay_ms /. 1000.)
             ~addr
             ~frags:(site_frags site) ())
         addrs)
  in
  let mux = Client.create ~timeout:60. ~addrs () in
  Fun.protect
    ~finally:(fun () ->
      Client.shutdown_sites mux;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with _ -> ());
          try ignore (Unix.waitpid [] pid) with _ -> ())
        pids;
      Array.iter
        (fun a ->
          match a with
          | Sockio.Unix_path p -> ( try Sys.remove p with _ -> ())
          | Sockio.Tcp _ -> ())
        addrs;
      try Sys.rmdir dir with _ -> ())
    (fun () -> f ~ft ~mux ~dir ())

let mk_coord ~proto ~ft ~mux ?table ~max_inflight () =
  let n_sites = Cluster.n_sites proto in
  let assign =
    match table with
    | Some t -> Ptable.assign t
    | None -> fun fid -> Cluster.site_of proto fid
  in
  Coordinator.create ~max_inflight ~max_queue
    (Coordinator.Sockets mux)
    [ Coordinator.mount ?table (Pax_core.Engines.pax2 ft ~n_sites ~assign) ]

(* ---------------- phase 1: saturation ------------------------------ *)

type phase = {
  ph_offered : int;
  ph_admitted : int;
  ph_shed_overloaded : int;
  ph_shed_deadline : int;
  ph_wall_s : float;
  ph_goodput_qps : float;
  ph_p50_ms : float;
  ph_p99_ms : float;
  ph_audit_pass : bool;
}

(* One closed-loop storm: [clients] threads, each attempting
   [per_client] queries from its own offset; a shed attempt counts,
   backs off and moves on to the next query — the client never blocks
   on admission.  [plan i k] gives thread [i]'s (source, deadline
   offset) for its [k]-th query; [None] means no deadline. *)
let storm coord ~clients ~per_client ~plan =
  let qarr = Array.of_list queries in
  let nq = Array.length qarr in
  let lock = Mutex.create () in
  let admitted = ref 0
  and shed_over = ref 0
  and shed_dead = ref 0
  and lats = ref []
  and audit_ok = ref true in
  let client i () =
    for k = 0 to per_client - 1 do
      let _, q = qarr.((i + k) mod nq) in
      let source, deadline_off = plan i k in
      let deadline =
        Option.map (fun d -> Pax_obs.Clock.now () +. d) deadline_off
      in
      let s = Unix.gettimeofday () in
      match Coordinator.run ~source ?deadline coord q with
      | Ok (o : Coordinator.Pe.outcome) ->
          let l = Unix.gettimeofday () -. s in
          Mutex.lock lock;
          incr admitted;
          lats := l :: !lats;
          if not o.audit.Pax_obs.Audit.pass then audit_ok := false;
          Mutex.unlock lock
      | Error (Coordinator.Rejected r) ->
          Mutex.lock lock;
          (match r with
          | Sched.Overloaded _ -> incr shed_over
          | Sched.Deadline_infeasible _ -> incr shed_dead
          | Sched.Closed -> failwith "overload: scheduler closed mid-storm");
          Mutex.unlock lock;
          Unix.sleepf shed_backoff_s
      | Error e ->
          failwith
            (Printf.sprintf "overload: %s rejected: %s" q
               (Coordinator.error_message e))
    done
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let lat = Array.of_list !lats in
  Array.sort compare lat;
  {
    ph_offered = clients * per_client;
    ph_admitted = !admitted;
    ph_shed_overloaded = !shed_over;
    ph_shed_deadline = !shed_dead;
    ph_wall_s = wall;
    ph_goodput_qps = float_of_int !admitted /. wall;
    ph_p50_ms = 1000. *. percentile lat 50.;
    ph_p99_ms = 1000. *. percentile lat 99.;
    ph_audit_pass = !audit_ok;
  }

(* An untimed sequential pass through the query set: warms the servers
   and calibrates the coordinator's admission predictor (the deadline
   check is only as good as its cost estimates). *)
let warm coord =
  List.iter
    (fun (_, q) ->
      match Coordinator.run coord q with
      | Ok _ -> ()
      | Error e ->
          failwith
            (Printf.sprintf "overload: warm-up rejected: %s"
               (Coordinator.error_message e)))
    queries

let saturation ~proto ~ft ~mux () =
  let coord = mk_coord ~proto ~ft ~mux ~max_inflight () in
  Fun.protect ~finally:(fun () -> Coordinator.close coord) @@ fun () ->
  warm coord;
  let best = ref None in
  for _ = 1 to Setup.repeats do
    let ph =
      storm coord ~clients:max_inflight
        ~per_client:(sat_queries / max_inflight)
        ~plan:(fun i _ -> (Printf.sprintf "sat%d" i, None))
    in
    match !best with
    | Some b when b.ph_goodput_qps >= ph.ph_goodput_qps && b.ph_audit_pass -> ()
    | _ -> best := Some ph
  done;
  Option.get !best

(* ---------------- phase 2: overload -------------------------------- *)

let overload ~proto ~ft ~mux () =
  let coord = mk_coord ~proto ~ft ~mux ~max_inflight () in
  Fun.protect ~finally:(fun () -> Coordinator.close coord) @@ fun () ->
  (* Half the clients are gold: 4 dispatches per rotation turn, a
     priority class of their own, and deadlines loose enough that only
     a full queue sheds them.  Bronze keeps the defaults and asks for
     latencies the backlog cannot deliver — the admission estimate
     sheds those up front instead of letting them rot in the queue. *)
  let gold_clients = overload_clients / 2 in
  for i = 0 to gold_clients - 1 do
    Coordinator.configure_source coord
      ~source:(Printf.sprintf "gold%d" i)
      ~weight:4 ~priority:1 ()
  done;
  warm coord;
  let plan i _k =
    if i < gold_clients then
      (Printf.sprintf "gold%d" i, Some loose_deadline_s)
    else (Printf.sprintf "bronze%d" i, Some tight_deadline_s)
  in
  (* Best-of like the saturation phase: on a shared box a single storm
     can lose a repeat to unrelated scheduler noise. *)
  let best = ref None in
  for _ = 1 to Setup.repeats do
    let ph = storm coord ~clients:overload_clients ~per_client ~plan in
    match !best with
    | Some b when b.ph_goodput_qps >= ph.ph_goodput_qps && b.ph_audit_pass -> ()
    | _ -> best := Some ph
  done;
  Option.get !best

(* ---------------- phase 3: two-coordinator identity ----------------- *)

(* Sequential runs through [coord], answers only — placement moves
   change visit routes, never answers, so identity is on answer keys
   and audit verdicts. *)
let answers_of coord qs =
  List.map
    (fun (_, q) ->
      match Coordinator.run coord q with
      | Ok (o : Coordinator.Pe.outcome) ->
          (o.answer_keys, o.audit.Pax_obs.Audit.pass)
      | Error e ->
          failwith
            (Printf.sprintf "overload: identity run rejected: %s"
               (Coordinator.error_message e)))
    qs

let identity ~proto ~ft ~mux ~dir () =
  let n_frags = Fragment.n_fragments ft in
  let n_sites = Cluster.n_sites proto in
  let snapshot = Filename.concat dir "placement.tbl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove snapshot with _ -> ())
    (fun () ->
      (* The sequential reference runs on the untouched placement at
         epoch 0: fragments retired by the later move refuse only
         visits stamped at the move's epoch or later. *)
      let reference = mk_coord ~proto ~ft ~mux ~max_inflight:1 () in
      let expect =
        Fun.protect
          ~finally:(fun () -> Coordinator.close reference)
          (fun () -> answers_of reference queries)
      in
      let table =
        Ptable.create ~n_frags ~n_sites
          ~assign:(fun fid -> Cluster.site_of proto fid)
          ()
      in
      Ptable.save table snapshot;
      let coord_a = mk_coord ~proto ~ft ~mux ~table ~max_inflight:2 () in
      let coord_b = mk_coord ~proto ~ft ~mux ~table ~max_inflight:2 () in
      let half = List.length queries / 2 in
      let first = List.filteri (fun i _ -> i < half) queries in
      let second = List.filteri (fun i _ -> i >= half) queries in
      let alternate a b qs =
        List.mapi
          (fun i q -> ((if i mod 2 = 0 then a else b), q))
          qs
        |> List.map (fun (coord, q) -> List.hd (answers_of coord [ q ]))
      in
      let got_first = alternate coord_a coord_b first in
      (* A fragment migrates, the snapshot records it... *)
      let fid = min 1 (n_frags - 1) in
      let dst = (Cluster.site_of proto fid + 1) mod n_sites in
      (match Migrate.move ~mux ~ft ~table ~fid ~dst () with
      | Ok _ -> ()
      | Error e -> failwith (Printf.sprintf "overload: move failed: %s" e));
      Ptable.save table snapshot;
      (* ...then coordinator A dies.  Its replacement rebuilds the
         placement from the snapshot and replays the recorded moves
         against the live servers (installs are idempotent). *)
      Coordinator.close coord_a;
      let restart_recovered, got_second =
        match Ptable.load snapshot with
        | Error e -> failwith (Printf.sprintf "overload: load failed: %s" e)
        | Ok table' -> (
            match Migrate.replay ~mux ~table:table' () with
            | Error e ->
                failwith (Printf.sprintf "overload: replay failed: %s" e)
            | Ok () ->
                let coord_a' =
                  mk_coord ~proto ~ft ~mux ~table:table' ~max_inflight:2 ()
                in
                let got =
                  Fun.protect
                    ~finally:(fun () -> Coordinator.close coord_a')
                    (fun () -> alternate coord_a' coord_b second)
                in
                (Ptable.epoch table' = Ptable.epoch table, got))
      in
      Coordinator.close coord_b;
      let got = got_first @ got_second in
      let identical =
        List.for_all2
          (fun (ea, eok) (ga, gok) -> ea = ga && eok && gok)
          expect got
      in
      (identical, restart_recovered && List.for_all2
          (fun (ea, _) (ga, _) -> ea = ga)
          (List.filteri (fun i _ -> i >= half) expect)
          got_second))

(* ---------------- reporting ---------------------------------------- *)

let emit ~sat ~over ~identical ~restart_recovered =
  let out =
    match Sys.getenv_opt "PAX_BENCH_OUT" with
    | Some p -> p
    | None -> "BENCH_PR10.json"
  in
  let shed = over.ph_shed_overloaded + over.ph_shed_deadline in
  let j =
    J.Obj
      [
        ("bench", J.Str "overload");
        ("pr", J.int 10);
        ("workload", J.Str "ft2-exp2");
        ("engine", J.Str "pax2");
        ("transport", J.Str "unix-sockets");
        ("quick", J.Bool Setup.quick);
        ("cores", J.int (Domain.recommended_domain_count ()));
        ("size_mb", J.int cumulative_mb);
        ("site_delay_ms", J.Num site_delay_ms);
        ("scale_nodes_per_mb", J.int Setup.scale);
        ("repeats", J.int Setup.repeats);
        ("concurrency", J.int overload_clients);
        ("max_inflight", J.int max_inflight);
        ("max_queue", J.int max_queue);
        ("tight_deadline_ms", J.Num (1000. *. tight_deadline_s));
        ("loose_deadline_ms", J.Num (1000. *. loose_deadline_s));
        ("queries", J.List (List.map (fun (n, _) -> J.Str n) queries));
        ("sat_qps", J.Num sat.ph_goodput_qps);
        ("offered", J.int over.ph_offered);
        ("admitted", J.int over.ph_admitted);
        ("shed", J.int shed);
        ("shed_overloaded", J.int over.ph_shed_overloaded);
        ("shed_deadline", J.int over.ph_shed_deadline);
        ("overload_goodput_qps", J.Num over.ph_goodput_qps);
        ( "goodput_ratio",
          J.Num (over.ph_goodput_qps /. Float.max sat.ph_goodput_qps 1e-9) );
        ("p50_admitted_ms", J.Num over.ph_p50_ms);
        ("p99_admitted_ms", J.Num over.ph_p99_ms);
        ("audit_pass", J.Bool (sat.ph_audit_pass && over.ph_audit_pass));
        ("two_coord_identical", J.Bool identical);
        ("restart_recovered", J.Bool restart_recovered);
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n%!" out

let main () =
  Printf.printf
    "serving overload: FT2 %d units, %d clients vs %d workers / queue %d, \
     site delay %.1f ms, quick=%b\n%!"
    cumulative_mb overload_clients max_inflight max_queue site_delay_ms
    Setup.quick;
  let proto = Setup.ft2 ~cumulative_mb in
  with_servers proto (fun ~ft ~mux ~dir () ->
      let sat = saturation ~proto ~ft ~mux () in
      Printf.printf "  saturation:  %7.1f qps  p99 %6.2f ms  audit %s\n%!"
        sat.ph_goodput_qps sat.ph_p99_ms
        (if sat.ph_audit_pass then "pass" else "FAIL");
      let over = overload ~proto ~ft ~mux () in
      Printf.printf
        "  overload:    %7.1f qps goodput (ratio %.2f)  offered %d  \
         admitted %d  shed %d (%d overloaded, %d deadline)  p99 %6.2f ms  \
         audit %s\n%!"
        over.ph_goodput_qps
        (over.ph_goodput_qps /. Float.max sat.ph_goodput_qps 1e-9)
        over.ph_offered over.ph_admitted
        (over.ph_shed_overloaded + over.ph_shed_deadline)
        over.ph_shed_overloaded over.ph_shed_deadline over.ph_p99_ms
        (if over.ph_audit_pass then "pass" else "FAIL");
      let identical, restart_recovered = identity ~proto ~ft ~mux ~dir () in
      Printf.printf "  identity:    two-coordinator %s, restart %s\n%!"
        (if identical then "bit-identical" else "DIVERGED")
        (if restart_recovered then "recovered" else "FAILED");
      emit ~sat ~over ~identical ~restart_recovered)

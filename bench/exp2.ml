(* Experiments 2 and 3 (Fig. 10 and Fig. 11): scalability in data size
   over the nested fragment tree FT2, 10 fragments on 10 machines,
   cumulative size growing 100 → 280 paper-MB.

   Fig. 10 plots parallel computation time; Fig. 11 plots total
   computation time over the same runs, so both figures come from one
   sweep here.

   Series per figure, as in the paper:
     (a) Q1: PaX3-NA vs PaX3-XA      (annotations prune regions/auctions)
     (b) Q2: PaX3-NA vs PaX3-XA      (// after a prefix — pruning still works)
     (c) Q3: PaX3-NA, PaX2-NA, PaX2-XA
     (d) Q4: PaX3-NA vs PaX2-NA      (leading // defeats pruning) *)

let sizes () =
  if Setup.quick then [ 100; 160; 220; 280 ]
  else [ 100; 120; 140; 160; 180; 200; 220; 240; 260; 280 ]

type row = {
  size_mb : int;
  samples : (string * Setup.sample) list;  (* config name -> sample *)
}

let sweep ~qname ~configs =
  List.map
    (fun size_mb ->
      let cl = Setup.ft2 ~cumulative_mb:size_mb in
      let q = Setup.query qname in
      let samples =
        List.map
          (fun (cfg : Setup.config) -> (cfg.Setup.cname, Setup.measure cfg cl q))
          configs
      in
      (* Cross-check agreement between configurations. *)
      (match samples with
      | (_, first) :: rest ->
          List.iter
            (fun (cname, s) ->
              if
                s.Setup.result.Setup.Run_result.answer_ids
                <> first.Setup.result.Setup.Run_result.answer_ids
              then failwith ("exp2: " ^ cname ^ " disagrees on " ^ qname))
            rest
      | [] -> ());
      { size_mb; samples })
    (sizes ())

let print_table ~metric ~label rows configs =
  Printf.printf "%-8s" "MB";
  List.iter (fun (c : Setup.config) -> Printf.printf " %12s" c.Setup.cname) configs;
  Printf.printf "   (%s)\n" label;
  List.iter
    (fun r ->
      Printf.printf "%-8d" r.size_mb;
      List.iter
        (fun (cfg : Setup.config) ->
          let s = List.assoc cfg.Setup.cname r.samples in
          Printf.printf " %12.4f" (metric s))
        configs;
      print_newline ())
    rows

let run () =
  let figures =
    [
      ("(a) Q1", "Q1", [ Setup.pax3_na; Setup.pax3_xa ]);
      ("(b) Q2", "Q2", [ Setup.pax3_na; Setup.pax3_xa ]);
      ("(c) Q3", "Q3", [ Setup.pax3_na; Setup.pax2_na; Setup.pax2_xa ]);
      ("(d) Q4", "Q4", [ Setup.pax3_na; Setup.pax2_na ]);
    ]
  in
  let all =
    List.map
      (fun (label, qname, configs) ->
        (label, qname, configs, sweep ~qname ~configs))
      figures
  in
  Setup.header "Experiment 2 (Fig. 10) — parallel time vs data size, FT2";
  List.iter
    (fun (label, qname, configs, rows) ->
      Setup.section (Printf.sprintf "Fig. 10%s = %s" label qname);
      print_table ~metric:(fun s -> s.Setup.parallel_s)
        ~label:"seconds, parallel" rows configs)
    all;
  Setup.header "Experiment 3 (Fig. 11) — total computation, same runs";
  List.iter
    (fun (label, qname, configs, rows) ->
      Setup.section (Printf.sprintf "Fig. 11%s = %s" label qname);
      print_table ~metric:(fun s -> s.Setup.total_s)
        ~label:"seconds, summed over machines" rows configs)
    all

(* Benchmark harness: regenerates every table and figure of the paper's
   §6 (Experiments 1-3 / Fig. 9-11, the Fig. 7 query table and the
   Fig. 8 fragment trees with their size split), plus the cost-guarantee
   ablations and Bechamel micro-benchmarks of the kernels.

     dune exec bench/main.exe             full sweep
     PAX_BENCH_QUICK=1 dune exec ...      reduced sweep for smoke runs

   See EXPERIMENTS.md for the paper-vs-measured discussion. *)

let () =
  Printf.printf
    "PaX benchmark harness — scale: %d nodes per paper-MB, best of %d runs%s\n"
    Setup.scale Setup.repeats
    (if Setup.quick then " (QUICK mode)" else "");
  Queries_fig.run ();
  Exp1.run ();
  Exp2.run ();
  Scaling.run ();
  Costs.run ();
  Micro.run ()

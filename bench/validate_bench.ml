(* Schema check for the benchmark JSON artifacts (BENCH_*.json):

     validate_bench.exe FILE...

   Dispatches on the top-level "bench" field: "scaling" (the multicore
   scaling runs of BENCH_PR2-style files), "throughput" (the serving
   benchmark of bench/throughput.ml), "flat" (the pointer-vs-flat
   stage kernels of bench/flat_main.ml), "skew" (the hot-shard
   rebalance runs of bench/skew.ml) or "overload" (the deadline/QoS
   shedding storms of bench/overload.ml).  Exits 0 when every file is
   well-formed and carries the fields later PRs' perf tracking relies
   on; prints what is wrong and exits 1 otherwise.  Used by the
   @bench-smoke and @check dune aliases so a perf-harness regression
   shows up as a build failure, not as a silently missing or malformed
   artifact. *)

module J = Bench_json

let errors = ref []
let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt

let need_str obj ctx k =
  match Option.bind (J.member k obj) J.as_str with
  | Some s -> Some s
  | None ->
      err "%s: missing or non-string %S" ctx k;
      None

let need_num obj ctx k =
  match Option.bind (J.member k obj) J.as_num with
  | Some f -> Some f
  | None ->
      err "%s: missing or non-number %S" ctx k;
      None

let need_list obj ctx k =
  match Option.bind (J.member k obj) J.as_list with
  | Some l -> Some l
  | None ->
      err "%s: missing or non-array %S" ctx k;
      None

(* Optional (absent in pre-PR4 artifacts): the per-run round-latency
   histogram exported from the telemetry sink.  When present it must
   carry ascending-le cumulative buckets and non-negative sum/count. *)
let check_latency ctx h =
  let ctx = ctx ^ "/round_latency_s" in
  (match need_list h ctx "buckets" with
  | Some buckets ->
      let last_cum = ref 0. in
      List.iteri
        (fun i b ->
          let bctx = Printf.sprintf "%s/buckets[%d]" ctx i in
          ignore (need_str b bctx "le");
          match need_num b bctx "count" with
          | Some c when c < 0. -> err "%s: negative count" bctx
          | Some c when c < !last_cum ->
              err "%s: cumulative counts must be non-decreasing" bctx
          | Some c -> last_cum := c
          | None -> ())
        buckets
  | None -> ());
  List.iter
    (fun k ->
      match need_num h ctx k with
      | Some v when v < 0. -> err "%s: negative %S" ctx k
      | _ -> ())
    [ "sum"; "count" ]

(* Optional (absent in pre-PR4 artifacts): the guarantee auditor's
   verdict for the query.  Committed artifacts must only ever carry
   passing audits — a failed bound is a regression, not data. *)
let check_audit ctx a =
  let ctx = ctx ^ "/audit" in
  (match Option.bind (J.member "pass" a) J.as_bool with
  | Some true -> ()
  | Some false -> err "%s: audit failed (pass=false)" ctx
  | None -> err "%s: missing or non-bool \"pass\"" ctx);
  match need_list a ctx "bounds" with
  | Some (_ :: _ as bounds) ->
      List.iteri
        (fun i b ->
          let bctx = Printf.sprintf "%s/bounds[%d]" ctx i in
          ignore (need_str b bctx "name");
          ignore (need_str b bctx "formula");
          ignore (need_num b bctx "actual");
          ignore (need_num b bctx "limit");
          ignore (need_num b bctx "margin");
          match Option.bind (J.member "pass" b) J.as_bool with
          | Some _ -> ()
          | None -> err "%s: missing or non-bool \"pass\"" bctx)
        bounds
  | Some [] -> err "%s: empty \"bounds\"" ctx
  | None -> ()

let check_run ctx r =
  match Option.bind (J.member "domains" r) J.as_num with
  | None -> err "%s: run without integer \"domains\"" ctx
  | Some d ->
      let ctx = Printf.sprintf "%s/domains:%.0f" ctx d in
      if d < 1. || not (Float.is_integer d) then
        err "%s: bad domain count" ctx;
      (* Optional (absent in pre-PR3 artifacts), but must be a bool
         when present. *)
      (match J.member "oversubscribed" r with
      | Some v when J.as_bool v = None ->
          err "%s: non-bool \"oversubscribed\"" ctx
      | Some _ | None -> ());
      (match J.member "round_latency_s" r with
      | Some h -> check_latency ctx h
      | None -> ());
      List.iter
        (fun k ->
          match need_num r ctx k with
          | Some v when v < 0. -> err "%s: negative %S" ctx k
          | _ -> ())
        [ "wall_s"; "parallel_s"; "total_s"; "speedup" ]

let check_result i r =
  let ctx =
    match Option.bind (J.member "query" r) J.as_str with
    | Some q -> Printf.sprintf "results[%d]=%s" i q
    | None ->
        err "results[%d]: missing or non-string \"query\"" i;
        Printf.sprintf "results[%d]" i
  in
  ignore (need_str r ctx "config");
  ignore (need_num r ctx "answers");
  (match J.member "audit" r with
  | Some a -> check_audit ctx a
  | None -> ());
  match need_list r ctx "runs" with
  | Some (_ :: _ as runs) ->
      List.iter (check_run ctx) runs;
      (* The first run is the sequential baseline. *)
      (match runs with
      | first :: _ -> (
          match Option.bind (J.member "domains" first) J.as_num with
          | Some 1. -> ()
          | _ -> err "%s: first run must be the domains:1 baseline" ctx)
      | [] -> ())
  | Some [] -> err "%s: empty \"runs\"" ctx
  | None -> ()

let check_scaling (v : J.t) =
  (match J.member "pr" v with
  | Some _ -> ()
  | None -> err "top: missing \"pr\"");
  (match Option.bind (J.member "quick" v) J.as_bool with
  | Some _ -> ()
  | None -> err "top: missing or non-bool \"quick\"");
  List.iter
    (fun k ->
      match Option.bind (J.member k v) J.as_num with
      | Some f when f >= 1. -> ()
      | _ -> err "top: missing or bad %S" k)
    [ "cores"; "size_mb"; "repeats" ];
  (match Option.bind (J.member "domains_tested" v) J.as_list with
  | Some (_ :: _) -> ()
  | _ -> err "top: missing or empty \"domains_tested\"");
  match Option.bind (J.member "results" v) J.as_list with
  | Some (_ :: _ as results) -> List.iteri check_result results
  | Some [] -> err "top: empty \"results\""
  | None -> err "top: missing \"results\""

(* ---------------- the serving throughput schema -------------------- *)

(* One (concurrency, cache) combo of bench/throughput.ml. *)
let check_combo i r =
  let ctx = Printf.sprintf "results[%d]" i in
  let conc =
    match need_num r ctx "concurrency" with
    | Some c when c >= 1. && Float.is_integer c -> Some c
    | Some _ ->
        err "%s: bad \"concurrency\"" ctx;
        None
    | None -> None
  in
  let cached = Option.bind (J.member "cache" r) J.as_bool in
  if cached = None then err "%s: missing or non-bool \"cache\"" ctx;
  List.iter
    (fun k ->
      match need_num r ctx k with
      | Some v when v <= 0. -> err "%s: non-positive %S" ctx k
      | _ -> ())
    [ "queries"; "wall_s"; "qps" ];
  (match (need_num r ctx "p50_ms", need_num r ctx "p99_ms") with
  | Some p50, Some p99 ->
      if p50 < 0. || p99 < 0. then err "%s: negative latency" ctx;
      if p50 > p99 then err "%s: p50 > p99" ctx
  | _ -> ());
  (match Option.bind (J.member "audit_pass" r) J.as_bool with
  | Some true -> ()
  | Some false -> err "%s: audit failed (audit_pass=false)" ctx
  | None -> err "%s: missing or non-bool \"audit_pass\"" ctx);
  match (conc, cached, Option.bind (J.member "qps" r) J.as_num) with
  | Some c, Some k, Some q -> Some (c, k, q)
  | _ -> None

let check_throughput (v : J.t) =
  (match J.member "pr" v with
  | Some _ -> ()
  | None -> err "top: missing \"pr\"");
  let quick =
    match Option.bind (J.member "quick" v) J.as_bool with
    | Some q -> q
    | None ->
        err "top: missing or non-bool \"quick\"";
        false
  in
  List.iter
    (fun k ->
      match Option.bind (J.member k v) J.as_num with
      | Some f when f >= 1. -> ()
      | _ -> err "top: missing or bad %S" k)
    [ "cores"; "size_mb"; "repeats"; "total_queries" ];
  (match Option.bind (J.member "site_delay_ms" v) J.as_num with
  | Some d when d >= 0. -> ()
  | _ -> err "top: missing or bad \"site_delay_ms\"");
  (match Option.bind (J.member "queries" v) J.as_list with
  | Some (_ :: _) -> ()
  | _ -> err "top: missing or empty \"queries\"");
  match Option.bind (J.member "results" v) J.as_list with
  | Some (_ :: _ as results) ->
      let combos =
        List.mapi (fun i r -> check_combo i r) results
        |> List.filter_map Fun.id
      in
      (* The serving claim itself (quick smoke runs are too short to
         hold it to a perf bound): with the cross-query cache off, the
         highest tested concurrency must beat the sequential closed
         loop — otherwise concurrent serving isn't buying anything and
         the artifact documents a regression. *)
      let off = List.filter (fun (_, cached, _) -> not cached) combos in
      let qps_at c =
        List.find_map
          (fun (c', _, q) -> if c' = c then Some q else None)
          off
      in
      if not quick then (
        let cmax =
          List.fold_left (fun acc (c, _, _) -> Float.max acc c) 1. off
        in
        match (qps_at 1., qps_at cmax) with
        | Some q1, Some qn ->
            if cmax > 1. && qn <= q1 then
              err
                "top: concurrency %.0f qps (%.1f) must exceed the \
                 concurrency 1 baseline (%.1f) with cache off"
                cmax qn q1
        | _ -> err "top: cache-off results must include concurrency 1")
  | Some [] -> err "top: empty \"results\""
  | None -> err "top: missing \"results\""

(* ---------------- the pointer-vs-flat kernel schema ---------------- *)

(* One (query, kernel) row of bench/flat_main.ml. *)
let check_flat_row i r =
  let ctx = Printf.sprintf "results[%d]" i in
  ignore (need_str r ctx "query");
  (match need_str r ctx "kernel" with
  | Some ("qual" | "sel" | "combined") | None -> ()
  | Some k -> err "%s: unknown kernel %S" ctx k);
  List.iter
    (fun k ->
      match need_num r ctx k with
      | Some v when v <= 0. -> err "%s: non-positive %S" ctx k
      | _ -> ())
    [ "pointer_s"; "flat_s"; "speedup" ];
  (* Bit-identity is not a timing claim: the cross-check must hold in
     quick runs too. *)
  (match Option.bind (J.member "agree" r) J.as_bool with
  | Some true -> ()
  | Some false -> err "%s: flat and pointer outcomes disagree" ctx
  | None -> err "%s: missing or non-bool \"agree\"" ctx);
  match
    (need_str r ctx "kernel", Option.bind (J.member "speedup" r) J.as_num)
  with
  | Some k, Some s -> Some (k, s)
  | _ -> None

let check_flat (v : J.t) =
  (match J.member "pr" v with
  | Some _ -> ()
  | None -> err "top: missing \"pr\"");
  let quick =
    match Option.bind (J.member "quick" v) J.as_bool with
    | Some q -> q
    | None ->
        err "top: missing or non-bool \"quick\"";
        false
  in
  List.iter
    (fun k ->
      match Option.bind (J.member k v) J.as_num with
      | Some f when f >= 1. -> ()
      | _ -> err "top: missing or bad %S" k)
    [ "cores"; "nodes"; "repeats" ];
  (match Option.bind (J.member "flat_build_s" v) J.as_num with
  | Some b when b >= 0. -> ()
  | _ -> err "top: missing or bad \"flat_build_s\"");
  (match Option.bind (J.member "queries" v) J.as_list with
  | Some (_ :: _) -> ()
  | _ -> err "top: missing or empty \"queries\"");
  match Option.bind (J.member "results" v) J.as_list with
  | Some (_ :: _ as results) ->
      let rows =
        List.mapi (fun i r -> check_flat_row i r) results
        |> List.filter_map Fun.id
      in
      (* The hot-path claim itself (quick smoke runs are too short to
         hold to a perf bound): no stage loop may lose to the pointer
         kernels, and the columnar win must show on the qualifier pass
         — otherwise the flat representation isn't buying anything and
         the artifact documents a regression. *)
      if not quick then begin
        List.iter
          (fun (k, s) ->
            if s < 1. then
              err "top: kernel %S slower flat than pointer (x%.2f)" k s)
          rows;
        match List.filter (fun (k, _) -> k = "qual") rows with
        | [] -> err "top: no \"qual\" kernel rows"
        | quals ->
            let best =
              List.fold_left (fun acc (_, s) -> Float.max acc s) 0. quals
            in
            if best < 2. then
              err "top: best qual speedup x%.2f < x2 — flat hot path lost"
                best
      end
  | Some [] -> err "top: empty \"results\""
  | None -> err "top: missing \"results\""

(* ---------------- the hot-shard rebalance schema ------------------- *)

(* One closed-loop phase ("pre" / "post") of bench/skew.ml.  Audits are
   not a timing claim: they must pass in quick runs too. *)
let check_skew_phase v ctx =
  match Option.bind (J.member ctx v) (fun p -> Some p) with
  | None ->
      err "top: missing %S" ctx;
      None
  | Some p ->
      List.iter
        (fun k ->
          match need_num p ctx k with
          | Some x when x <= 0. -> err "%s: non-positive %S" ctx k
          | _ -> ())
        [ "queries"; "wall_s"; "qps" ];
      (match (need_num p ctx "p50_ms", need_num p ctx "p99_ms") with
      | Some p50, Some p99 ->
          if p50 < 0. || p99 < 0. then err "%s: negative latency" ctx;
          if p50 > p99 then err "%s: p50 > p99" ctx
      | _ -> ());
      (match Option.bind (J.member "audit_pass" p) J.as_bool with
      | Some true -> ()
      | Some false -> err "%s: audit failed (audit_pass=false)" ctx
      | None -> err "%s: missing or non-bool \"audit_pass\"" ctx);
      Option.bind (J.member "p99_ms" p) J.as_num

let check_skew (v : J.t) =
  (match J.member "pr" v with
  | Some _ -> ()
  | None -> err "top: missing \"pr\"");
  let quick =
    match Option.bind (J.member "quick" v) J.as_bool with
    | Some q -> q
    | None ->
        err "top: missing or non-bool \"quick\"";
        false
  in
  List.iter
    (fun k ->
      match Option.bind (J.member k v) J.as_num with
      | Some f when f >= 1. -> ()
      | _ -> err "top: missing or bad %S" k)
    [
      "cores"; "size_mb"; "repeats"; "total_queries"; "concurrency";
      "n_frags"; "n_sites";
    ];
  (match Option.bind (J.member "site_delay_ms" v) J.as_num with
  | Some d when d >= 0. -> ()
  | _ -> err "top: missing or bad \"site_delay_ms\"");
  (match Option.bind (J.member "queries" v) J.as_list with
  | Some (_ :: _) -> ()
  | _ -> err "top: missing or empty \"queries\"");
  let moves =
    match Option.bind (J.member "moves" v) J.as_num with
    | Some m when m >= 0. && Float.is_integer m -> m
    | _ ->
        err "top: missing or bad \"moves\"";
        0.
  in
  (match Option.bind (J.member "move_list" v) J.as_list with
  | Some ms ->
      if List.length ms <> int_of_float moves then
        err "top: \"move_list\" length disagrees with \"moves\"";
      List.iteri
        (fun i m ->
          let ctx = Printf.sprintf "move_list[%d]" i in
          List.iter (fun k -> ignore (need_num m ctx k))
            [ "fid"; "from"; "to"; "epoch" ])
        ms
  | None -> err "top: missing \"move_list\"");
  let loads =
    match
      ( Option.bind (J.member "max_site_load_pre" v) J.as_num,
        Option.bind (J.member "max_site_load_post" v) J.as_num )
    with
    | Some a, Some b when a >= 0. && b >= 0. -> Some (a, b)
    | _ ->
        err "top: missing or bad \"max_site_load_pre\"/\"max_site_load_post\"";
        None
  in
  let pre = check_skew_phase v "pre" in
  let post = check_skew_phase v "post" in
  (* The rebalancing claim itself (quick smoke runs are too short to
     hold the latency to a perf bound): the committed artifact must
     show the hot shard actually dissolving — at least one executed
     move, a strictly lower max per-site visit load, and no p99
     regression. *)
  if not quick then begin
    if moves < 1. then err "top: rebalance executed no moves";
    (match loads with
    | Some (a, b) when b >= a ->
        err "top: max site load %.0f post >= %.0f pre — hot shard survived"
          b a
    | _ -> ());
    match (pre, post) with
    | Some p_pre, Some p_post ->
        if p_post > p_pre then
          err "top: post-rebalance p99 %.2f ms > pre %.2f ms" p_post p_pre
    | _ -> ()
  end

(* ---------------- the overload / shedding schema ------------------- *)

let check_overload (v : J.t) =
  (match J.member "pr" v with
  | Some _ -> ()
  | None -> err "top: missing \"pr\"");
  let quick =
    match Option.bind (J.member "quick" v) J.as_bool with
    | Some q -> q
    | None ->
        err "top: missing or non-bool \"quick\"";
        false
  in
  List.iter
    (fun k ->
      match Option.bind (J.member k v) J.as_num with
      | Some f when f >= 1. -> ()
      | _ -> err "top: missing or bad %S" k)
    [ "cores"; "size_mb"; "repeats"; "concurrency"; "max_inflight";
      "max_queue" ];
  (match Option.bind (J.member "site_delay_ms" v) J.as_num with
  | Some d when d >= 0. -> ()
  | _ -> err "top: missing or bad \"site_delay_ms\"");
  (match Option.bind (J.member "queries" v) J.as_list with
  | Some (_ :: _) -> ()
  | _ -> err "top: missing or empty \"queries\"");
  let counter k =
    match Option.bind (J.member k v) J.as_num with
    | Some c when c >= 0. && Float.is_integer c -> Some c
    | _ ->
        err "top: missing or bad %S" k;
        None
  in
  let offered = counter "offered"
  and admitted = counter "admitted"
  and shed = counter "shed" in
  (* The books must balance: every offered query was either admitted
     (and completed) or shed with a typed rejection — never dropped on
     the floor. *)
  (match (offered, admitted, shed) with
  | Some o, Some a, Some s ->
      if a +. s <> o then
        err "top: admitted %.0f + shed %.0f <> offered %.0f" a s o;
      if a < 1. then err "top: no queries admitted"
  | _ -> ());
  (match (counter "shed_overloaded", counter "shed_deadline", shed) with
  | Some so, Some sd, Some s when so +. sd <> s ->
      err "top: shed_overloaded %.0f + shed_deadline %.0f <> shed %.0f" so sd
        s
  | _ -> ());
  List.iter
    (fun k ->
      match Option.bind (J.member k v) J.as_num with
      | Some f when f > 0. -> ()
      | _ -> err "top: missing or non-positive %S" k)
    [ "sat_qps"; "overload_goodput_qps"; "goodput_ratio" ];
  (match
     ( Option.bind (J.member "p50_admitted_ms" v) J.as_num,
       Option.bind (J.member "p99_admitted_ms" v) J.as_num )
   with
  | Some p50, Some p99 ->
      if p50 < 0. || p99 < 0. then err "top: negative latency";
      if p50 > p99 then err "top: p50_admitted_ms > p99_admitted_ms"
  | _ -> err "top: missing \"p50_admitted_ms\"/\"p99_admitted_ms\"");
  (* Audits and the two-coordinator identity are not timing claims:
     they must hold in quick runs too. *)
  (match Option.bind (J.member "audit_pass" v) J.as_bool with
  | Some true -> ()
  | Some false -> err "top: audit failed (audit_pass=false)"
  | None -> err "top: missing or non-bool \"audit_pass\"");
  List.iter
    (fun k ->
      match Option.bind (J.member k v) J.as_bool with
      | Some true -> ()
      | Some false -> err "top: %S is false" k
      | None -> err "top: missing or non-bool %S" k)
    [ "two_coord_identical"; "restart_recovered" ];
  (* The shedding claim itself (quick smoke storms are too small to
     hold to perf bounds): a real overload run must offer >= 64-way
     concurrency, shed something — with the deadline path exercised,
     not just queue overflow — and keep admitted goodput within 10% of
     the saturation ceiling.  Collapse under load is a regression the
     artifact must not hide. *)
  if not quick then begin
    (match Option.bind (J.member "concurrency" v) J.as_num with
    | Some c when c < 64. ->
        err "top: full runs need concurrency >= 64 (got %.0f)" c
    | _ -> ());
    (match shed with
    | Some s when s < 1. -> err "top: overload run shed nothing"
    | _ -> ());
    (match counter "shed_deadline" with
    | Some sd when sd < 1. -> err "top: deadline shedding never fired"
    | _ -> ());
    match Option.bind (J.member "goodput_ratio" v) J.as_num with
    | Some r when r < 0.9 ->
        err "top: goodput ratio %.2f < 0.9 — the tier collapsed instead \
             of shedding" r
    | _ -> ()
  end

let check (v : J.t) =
  match Option.bind (J.member "bench" v) J.as_str with
  | Some "scaling" ->
      check_scaling v;
      "scaling"
  | Some "throughput" ->
      check_throughput v;
      "throughput"
  | Some "flat" ->
      check_flat v;
      "flat"
  | Some "skew" ->
      check_skew v;
      "skew"
  | Some "overload" ->
      check_overload v;
      "overload"
  | Some other ->
      err "top: unknown bench kind %S" other;
      "?"
  | None ->
      err "top: missing \"bench\"";
      "?"

let check_file path =
  errors := [];
  let kind =
    match J.parse_file path with
    | v -> check v
    | exception J.Parse_error m ->
        err "not valid JSON: %s" m;
        "?"
    | exception Sys_error m ->
        err "%s" m;
        "?"
  in
  match List.rev !errors with
  | [] ->
      Printf.printf "%s: %s bench schema OK\n" path kind;
      true
  | es ->
      List.iter (fun e -> Printf.eprintf "%s: %s\n" path e) es;
      false

let () =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as paths) ->
      (* Check every file even after a failure, then fail once. *)
      if not (List.fold_left (fun ok p -> check_file p && ok) true paths) then
        exit 1
  | _ ->
      prerr_endline "usage: validate_bench FILE...";
      exit 2

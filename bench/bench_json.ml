(* A deliberately small JSON library for the bench harness: enough to
   emit BENCH_PR2-style result files and to parse them back for schema
   validation in the @bench-smoke alias.  No external dependencies (the
   tree stays in stdlib-land), no streaming, no unicode escapes beyond
   pass-through — bench files are ASCII and machine-written. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* ---------------- printing ---------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

(* Two-space indented, keys in insertion order: stable diffs when the
   file is committed. *)
let to_string (v : t) : string =
  let b = Buffer.create 1024 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go ind = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Num f -> Buffer.add_string b (num_repr f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (ind + 2);
            go (ind + 2) x)
          xs;
        Buffer.add_char b '\n';
        pad ind;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (ind + 2);
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\": ";
            go (ind + 2) x)
          kvs;
        Buffer.add_char b '\n';
        pad ind;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* ---------------- parsing ----------------------------------------- *)

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?'
              | None -> fail "bad \\u escape");
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let member () =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            (k, v)
          in
          let rec members acc =
            let kv = member () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
    | Some _ -> number ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse s

(* ---------------- accessors (for validation) ----------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let as_list = function List xs -> Some xs | _ -> None
let as_num = function Num f -> Some f | _ -> None
let as_str = function Str s -> Some s | _ -> None
let as_bool = function Bool b -> Some b | _ -> None
